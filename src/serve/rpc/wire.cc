#include "serve/rpc/wire.h"

// CellDelta body encoding is shared with the checkpoint manifest and the
// journal (persist::PutCellDelta / GetCellDelta), so a delta that went
// over the wire serializes bit-identically in durable state.
#include "serve/persist/state_io.h"

namespace qp::serve::rpc {

const char* WireCodeToString(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "Ok";
    case WireCode::kBadRequest:
      return "BadRequest";
    case WireCode::kBackpressure:
      return "Backpressure";
    case WireCode::kShuttingDown:
      return "ShuttingDown";
    case WireCode::kInternal:
      return "Internal";
    case WireCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

ExtractResult ExtractFrame(const uint8_t* data, size_t size, size_t* consumed,
                           Frame* out, uint32_t max_frame) {
  if (size < kFrameHeaderBytes) return ExtractResult::kNeedMore;
  uint32_t payload = 0;
  for (int i = 0; i < 4; ++i) payload |= uint32_t(data[size_t(i)]) << (8 * i);
  // Validate the length BEFORE waiting for (or allocating) the payload:
  // the prefix is attacker-controlled.
  if (payload < kMessageHeaderBytes || payload > max_frame) {
    return ExtractResult::kError;
  }
  if (size < kFrameHeaderBytes + payload) return ExtractResult::kNeedMore;
  WireReader reader(data + kFrameHeaderBytes, kMessageHeaderBytes);
  out->type = static_cast<MsgType>(reader.U8());
  out->request_id = reader.U64();
  out->body = std::span<const uint8_t>(
      data + kFrameHeaderBytes + kMessageHeaderBytes,
      payload - kMessageHeaderBytes);
  *consumed = kFrameHeaderBytes + payload;
  return ExtractResult::kFrame;
}

std::vector<uint8_t> BuildFrame(MsgType type, uint64_t request_id,
                                const std::vector<uint8_t>& body) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + kMessageHeaderBytes + body.size());
  WireWriter w(&frame);
  w.U32(static_cast<uint32_t>(kMessageHeaderBytes + body.size()));
  w.U8(static_cast<uint8_t>(type));
  w.U64(request_id);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

namespace {

void WriteQuote(WireWriter& w, const Quote& quote) {
  w.F64(quote.price);
  w.U64(quote.version);
  w.U64Vec(quote.shard_versions);
  w.String(quote.algorithm);
}

bool ReadQuote(WireReader& r, Quote* quote) {
  quote->price = r.F64();
  quote->version = r.U64();
  quote->shard_versions = r.U64Vec();
  quote->algorithm = r.String();
  return r.ok();
}

/// Writes the frame head (zeroed length prefix + message header) and
/// returns the prefix's offset for EndFrame to patch once the body is in.
size_t BeginFrame(MsgType type, uint64_t request_id,
                  std::vector<uint8_t>* out) {
  const size_t start = out->size();
  WireWriter w(out);
  w.U32(0);
  w.U8(static_cast<uint8_t>(type));
  w.U64(request_id);
  return start;
}

void EndFrame(size_t start, std::vector<uint8_t>* out) {
  const uint32_t payload =
      static_cast<uint32_t>(out->size() - start - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    (*out)[start + size_t(i)] = uint8_t(payload >> (8 * i));
  }
}

}  // namespace

std::vector<uint8_t> EncodeQuoteRequest(uint64_t id,
                                        const std::vector<uint32_t>& bundle) {
  std::vector<uint8_t> body;
  WireWriter w(&body);
  w.U32Vec(bundle);
  return BuildFrame(MsgType::kQuote, id, body);
}

std::vector<uint8_t> EncodeQuoteBatchRequest(
    uint64_t id, std::span<const std::vector<uint32_t>> bundles) {
  std::vector<uint8_t> body;
  WireWriter w(&body);
  w.U32(static_cast<uint32_t>(bundles.size()));
  for (const std::vector<uint32_t>& bundle : bundles) w.U32Vec(bundle);
  return BuildFrame(MsgType::kQuoteBatch, id, body);
}

std::vector<uint8_t> EncodePurchaseRequest(uint64_t id, const std::string& sql,
                                           double valuation) {
  std::vector<uint8_t> body;
  WireWriter w(&body);
  w.String(sql);
  w.F64(valuation);
  return BuildFrame(MsgType::kPurchase, id, body);
}

std::vector<uint8_t> EncodeAppendRequest(uint64_t id,
                                         std::span<const WireBuyer> buyers) {
  std::vector<uint8_t> body;
  WireWriter w(&body);
  w.U32(static_cast<uint32_t>(buyers.size()));
  for (const WireBuyer& buyer : buyers) {
    w.String(buyer.sql);
    w.F64(buyer.valuation);
  }
  return BuildFrame(MsgType::kAppendBuyers, id, body);
}

std::vector<uint8_t> EncodeStatsRequest(uint64_t id) {
  return BuildFrame(MsgType::kStats, id, {});
}

std::vector<uint8_t> EncodeApplySellerDeltaRequest(
    uint64_t id, const market::CellDelta& delta) {
  std::vector<uint8_t> body;
  WireWriter w(&body);
  persist::PutCellDelta(w, delta);
  return BuildFrame(MsgType::kApplySellerDelta, id, body);
}

bool DecodeQuoteRequest(std::span<const uint8_t> body,
                        std::vector<uint32_t>* bundle) {
  return DecodeQuoteRequestInto(body, bundle);
}

bool DecodeQuoteRequestInto(std::span<const uint8_t> body,
                            std::vector<uint32_t>* bundle) {
  WireReader r(body);
  r.U32VecInto(bundle);
  return r.AtEnd();
}

bool DecodeQuoteBatchRequest(std::span<const uint8_t> body,
                             std::vector<std::vector<uint32_t>>* bundles) {
  WireReader r(body);
  uint32_t n = r.U32();
  bundles->clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) bundles->push_back(r.U32Vec());
  return r.AtEnd();
}

bool DecodePurchaseRequest(std::span<const uint8_t> body, std::string* sql,
                           double* valuation) {
  WireReader r(body);
  *sql = r.String();
  *valuation = r.F64();
  return r.AtEnd();
}

bool DecodeAppendRequest(std::span<const uint8_t> body,
                         std::vector<WireBuyer>* buyers) {
  WireReader r(body);
  uint32_t n = r.U32();
  buyers->clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    WireBuyer buyer;
    buyer.sql = r.String();
    buyer.valuation = r.F64();
    buyers->push_back(std::move(buyer));
  }
  return r.AtEnd();
}

bool DecodeApplySellerDeltaRequest(std::span<const uint8_t> body,
                                   market::CellDelta* delta) {
  WireReader r(body);
  Result<market::CellDelta> decoded = persist::GetCellDelta(r);
  if (!decoded.ok() || !r.AtEnd()) return false;
  *delta = std::move(decoded).value();
  return true;
}

std::vector<uint8_t> EncodeQuoteReply(uint64_t id, const Quote& quote) {
  std::vector<uint8_t> frame;
  AppendQuoteReplyFrame(id, quote, &frame);
  return frame;
}

std::vector<uint8_t> EncodeQuoteBatchReply(uint64_t id,
                                           std::span<const Quote> quotes) {
  std::vector<uint8_t> frame;
  AppendQuoteBatchReplyFrame(id, quotes, &frame);
  return frame;
}

std::vector<uint8_t> EncodePurchaseReply(uint64_t id,
                                         const WirePurchase& purchase) {
  std::vector<uint8_t> frame;
  AppendPurchaseReplyFrame(id, purchase, &frame);
  return frame;
}

std::vector<uint8_t> EncodeAppendReply(uint64_t id,
                                       const WireAppendResult& result) {
  std::vector<uint8_t> frame;
  AppendAppendReplyFrame(id, result, &frame);
  return frame;
}

std::vector<uint8_t> EncodeApplySellerDeltaReply(
    uint64_t id, const WireDeltaResult& result) {
  std::vector<uint8_t> frame;
  AppendApplySellerDeltaReplyFrame(id, result, &frame);
  return frame;
}

std::vector<uint8_t> EncodeStatsReply(uint64_t id, const WireStats& stats) {
  std::vector<uint8_t> frame;
  AppendStatsReplyFrame(id, stats, &frame);
  return frame;
}

std::vector<uint8_t> EncodeErrorReply(uint64_t id, WireCode code,
                                      const std::string& message) {
  std::vector<uint8_t> frame;
  AppendErrorReplyFrame(id, code, message, &frame);
  return frame;
}

void AppendQuoteReplyFrame(uint64_t id, const Quote& quote,
                           std::vector<uint8_t>* out) {
  const size_t start = BeginFrame(MsgType::kQuoteReply, id, out);
  WireWriter w(out);
  WriteQuote(w, quote);
  EndFrame(start, out);
}

void AppendQuoteBatchReplyFrame(uint64_t id, std::span<const Quote> quotes,
                                std::vector<uint8_t>* out) {
  const size_t start = BeginFrame(MsgType::kQuoteBatchReply, id, out);
  WireWriter w(out);
  w.U32(static_cast<uint32_t>(quotes.size()));
  for (const Quote& quote : quotes) WriteQuote(w, quote);
  EndFrame(start, out);
}

void AppendPurchaseReplyFrame(uint64_t id, const WirePurchase& purchase,
                              std::vector<uint8_t>* out) {
  const size_t start = BeginFrame(MsgType::kPurchaseReply, id, out);
  WireWriter w(out);
  w.U8(purchase.accepted ? 1 : 0);
  w.F64(purchase.valuation);
  WriteQuote(w, purchase.quote);
  w.U32Vec(purchase.bundle);
  EndFrame(start, out);
}

void AppendAppendReplyFrame(uint64_t id, const WireAppendResult& result,
                            std::vector<uint8_t>* out) {
  const size_t start = BeginFrame(MsgType::kAppendReply, id, out);
  WireWriter w(out);
  w.U8(static_cast<uint8_t>(result.code));
  w.String(result.message);
  w.U64(result.version);
  EndFrame(start, out);
}

void AppendApplySellerDeltaReplyFrame(uint64_t id,
                                      const WireDeltaResult& result,
                                      std::vector<uint8_t>* out) {
  const size_t start = BeginFrame(MsgType::kApplySellerDeltaReply, id, out);
  WireWriter w(out);
  w.U8(static_cast<uint8_t>(result.code));
  w.String(result.message);
  w.U64(result.generation);
  EndFrame(start, out);
}

void AppendStatsReplyFrame(uint64_t id, const WireStats& stats,
                           std::vector<uint8_t>* out) {
  const size_t start = BeginFrame(MsgType::kStatsReply, id, out);
  WireWriter w(out);
  w.U32(stats.num_shards);
  w.U64(stats.version);
  w.U64Vec(stats.shard_versions);
  w.U64(stats.num_edges);
  w.U64(stats.quotes_served);
  w.U64(stats.purchases);
  w.U64(stats.purchases_accepted);
  w.F64(stats.sale_revenue);
  w.U64(stats.prepared_hits);
  w.U64(stats.prepared_misses);
  w.U64(stats.prepared_evictions);
  w.U64(stats.prepared_entries);
  w.U64(stats.quote_ticks);
  w.U64(stats.batched_quotes);
  w.U64(stats.writer_rejected);
  w.U64(stats.protocol_errors);
  w.U64(stats.connections_accepted);
  w.U64(stats.catalog_generation);
  w.U64(stats.generations_published);
  w.U64(stats.folds);
  w.U64(stats.fold_retries);
  w.U64(stats.deltas_pending);
  w.U64(stats.deltas_folded);
  w.U64(stats.fold_nanos);
  w.U64(stats.staleness_samples);
  w.U64(stats.staleness_sum);
  w.U64(stats.staleness_max);
  w.U64(stats.loops);
  w.U64(stats.writev_calls);
  w.U64(stats.writev_frames);
  w.U64(stats.pool_hits);
  w.U64(stats.pool_bytes);
  EndFrame(start, out);
}

void AppendErrorReplyFrame(uint64_t id, WireCode code,
                           const std::string& message,
                           std::vector<uint8_t>* out) {
  const size_t start = BeginFrame(MsgType::kErrorReply, id, out);
  WireWriter w(out);
  w.U8(static_cast<uint8_t>(code));
  w.String(message);
  EndFrame(start, out);
}

bool DecodeQuoteReply(std::span<const uint8_t> body, Quote* quote) {
  WireReader r(body);
  return ReadQuote(r, quote) && r.AtEnd();
}

bool DecodeQuoteBatchReply(std::span<const uint8_t> body,
                           std::vector<Quote>* quotes) {
  WireReader r(body);
  uint32_t n = r.U32();
  quotes->clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    Quote quote;
    if (!ReadQuote(r, &quote)) break;
    quotes->push_back(std::move(quote));
  }
  return r.AtEnd();
}

bool DecodePurchaseReply(std::span<const uint8_t> body,
                         WirePurchase* purchase) {
  WireReader r(body);
  purchase->accepted = r.U8() != 0;
  purchase->valuation = r.F64();
  if (!ReadQuote(r, &purchase->quote)) return false;
  purchase->bundle = r.U32Vec();
  return r.AtEnd();
}

bool DecodeAppendReply(std::span<const uint8_t> body,
                       WireAppendResult* result) {
  WireReader r(body);
  result->code = static_cast<WireCode>(r.U8());
  result->message = r.String();
  result->version = r.U64();
  return r.AtEnd();
}

bool DecodeStatsReply(std::span<const uint8_t> body, WireStats* stats) {
  WireReader r(body);
  stats->num_shards = r.U32();
  stats->version = r.U64();
  stats->shard_versions = r.U64Vec();
  stats->num_edges = r.U64();
  stats->quotes_served = r.U64();
  stats->purchases = r.U64();
  stats->purchases_accepted = r.U64();
  stats->sale_revenue = r.F64();
  stats->prepared_hits = r.U64();
  stats->prepared_misses = r.U64();
  stats->prepared_evictions = r.U64();
  stats->prepared_entries = r.U64();
  stats->quote_ticks = r.U64();
  stats->batched_quotes = r.U64();
  stats->writer_rejected = r.U64();
  stats->protocol_errors = r.U64();
  stats->connections_accepted = r.U64();
  stats->catalog_generation = r.U64();
  stats->generations_published = r.U64();
  stats->folds = r.U64();
  stats->fold_retries = r.U64();
  stats->deltas_pending = r.U64();
  stats->deltas_folded = r.U64();
  stats->fold_nanos = r.U64();
  stats->staleness_samples = r.U64();
  stats->staleness_sum = r.U64();
  stats->staleness_max = r.U64();
  stats->loops = r.U64();
  stats->writev_calls = r.U64();
  stats->writev_frames = r.U64();
  stats->pool_hits = r.U64();
  stats->pool_bytes = r.U64();
  return r.AtEnd();
}

bool DecodeApplySellerDeltaReply(std::span<const uint8_t> body,
                                 WireDeltaResult* result) {
  WireReader r(body);
  result->code = static_cast<WireCode>(r.U8());
  result->message = r.String();
  result->generation = r.U64();
  return r.AtEnd();
}

bool DecodeErrorReply(std::span<const uint8_t> body, WireCode* code,
                      std::string* message) {
  WireReader r(body);
  *code = static_cast<WireCode>(r.U8());
  *message = r.String();
  return r.AtEnd();
}

}  // namespace qp::serve::rpc
