// Blocking client for the RPC serving front-end (serve/rpc/server.h).
//
// One TCP connection per client; NOT thread safe — use one RpcClient
// per thread (the server multiplexes any number of connections onto its
// single loop). Two usage shapes:
//
//  * Call(): one request, block for ITS reply. Replies can interleave
//    across request ids (the server answers writer completions and
//    batched quotes in its own order), so Call() parks frames that
//    answer other outstanding ids and hands them to a later Receive().
//  * Send() + Receive(): pipelined. Send any number of requests without
//    waiting, then Receive() replies as they arrive (in server order,
//    matched to your ids). This is how the open-loop bench drives the
//    server hard enough to exercise tick auto-batching.
//
// Backpressure is a first-class result, not an error: a kBackpressure
// ErrorReply surfaces as RpcResult::code == WireCode::kBackpressure with
// ok() == false, distinguishable from transport failure (Status).
//
// Resilience (RpcClientOptions + RetryPolicy):
//
//  * The socket is non-blocking throughout; Connect, sends and receives
//    poll with configurable deadlines. A timeout surfaces as
//    Status::DeadlineExceeded; a refused connection as
//    Status::Unavailable. A recv deadline leaves the connection (and any
//    buffered partial frame) intact — the reply can still be collected
//    later; a send deadline disconnects, because a partially written
//    frame desynchronizes the stream.
//  * QuoteWithRetry / AppendBuyersWithRetry / ApplySellerDeltaWithRetry
//    wrap the blocking calls in a RetryPolicy (exponential backoff +
//    jitter). Quotes are idempotent and read-only, so transport failures
//    reconnect and resend. Appends and seller deltas are at-most-once:
//    only an explicit kBackpressure / kUnavailable reply — the server
//    saying "NOT applied" — is retried; a transport failure mid-op is
//    returned to the caller, who cannot know whether it landed. (A
//    seller delta sets an absolute cell value, so a double apply would
//    be harmless — but the retry loop still refuses to guess.)
#ifndef QP_SERVE_RPC_CLIENT_H_
#define QP_SERVE_RPC_CLIENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "serve/price_book.h"
#include "serve/rpc/wire.h"

namespace qp::serve::rpc {

struct RpcClientOptions {
  /// Deadline for Connect (the TCP handshake). <= 0 blocks forever.
  int connect_timeout_ms = 5000;
  /// Per-frame receive deadline inside blocking calls / Receive().
  /// <= 0 blocks forever. On expiry the call returns DeadlineExceeded
  /// but the connection stays usable.
  int recv_timeout_ms = 0;
  /// Deadline for writing one request frame. <= 0 blocks forever. On
  /// expiry the connection is closed (the stream may hold a torn frame).
  int send_timeout_ms = 0;
};

/// Exponential backoff with multiplicative jitter: retry r sleeps
/// initial * multiplier^r (capped at max), scaled by a uniform draw from
/// [1 - jitter, 1]. Deterministic given `seed`.
struct RetryPolicy {
  int max_attempts = 5;
  int initial_backoff_ms = 1;
  int max_backoff_ms = 1000;
  double backoff_multiplier = 2.0;
  double jitter = 0.5;
  uint64_t seed = 1;
};

/// What a *WithRetry call actually did, for tests and telemetry.
struct RetryStats {
  /// Request attempts made (1 = first try succeeded).
  int attempts = 0;
  /// Retries triggered by an explicit kBackpressure reply.
  int backpressure_retries = 0;
  /// Retries triggered by a kUnavailable reply (shard warming).
  int unavailable_retries = 0;
  /// Successful re-connects (transport failure or lost connection).
  int reconnects = 0;
  /// Total milliseconds slept backing off.
  double backoff_ms = 0.0;
};

/// The backoff schedule, exposed for unit tests: milliseconds to sleep
/// before retry `retry` (0-based).
double RetryBackoffMs(const RetryPolicy& policy, int retry, Rng& rng);

/// One decoded reply. `type` tells which payload field is set; an
/// ErrorReply fills `code` + `message` only.
struct RpcReply {
  uint64_t request_id = 0;
  MsgType type = MsgType::kErrorReply;
  WireCode code = WireCode::kOk;
  std::string message;

  Quote quote;                 // kQuoteReply
  std::vector<Quote> quotes;   // kQuoteBatchReply
  WirePurchase purchase;       // kPurchaseReply
  WireAppendResult append;     // kAppendReply
  WireDeltaResult seller_delta;  // kApplySellerDeltaReply
  WireStats stats;             // kStatsReply

  bool ok() const { return code == WireCode::kOk; }
  bool backpressure() const { return code == WireCode::kBackpressure; }
};

class RpcClient {
 public:
  RpcClient() = default;
  explicit RpcClient(RpcClientOptions options) : options_(options) {}
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;
  RpcClient(RpcClient&& other) noexcept { *this = std::move(other); }
  RpcClient& operator=(RpcClient&& other) noexcept {
    if (this != &other) {
      Disconnect();
      fd_ = other.fd_;
      other.fd_ = -1;
      options_ = other.options_;
      address_ = std::move(other.address_);
      port_ = other.port_;
      next_id_ = other.next_id_;
      in_ = std::move(other.in_);
      parked_ = std::move(other.parked_);
    }
    return *this;
  }

  /// Connects to the server within options().connect_timeout_ms:
  /// non-blocking connect + poll, so a black-holed address returns
  /// DeadlineExceeded instead of hanging in the kernel's own (minutes-
  /// long) handshake timeout; a refused port returns Unavailable. Fails
  /// if already connected. The address is remembered for reconnects.
  Status Connect(const std::string& address, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  // --- blocking per-op calls -------------------------------------------
  // Each returns the transport status; the reply lands in `out`.
  // Application-level failures (kBadRequest, kBackpressure, ...) are an
  // OK transport status with !out->ok().

  Status Quote(const std::vector<uint32_t>& bundle, RpcReply* out);
  Status QuoteBatch(const std::vector<std::vector<uint32_t>>& bundles,
                    RpcReply* out);
  Status Purchase(const std::string& sql, double valuation, RpcReply* out);
  Status AppendBuyers(const std::vector<WireBuyer>& buyers, RpcReply* out);
  Status ApplySellerDelta(const market::CellDelta& delta, RpcReply* out);
  Status Stats(RpcReply* out);

  // --- retrying calls --------------------------------------------------

  /// Quote with reconnect-and-resend on transport failure and backoff on
  /// kBackpressure/kUnavailable replies (quotes are idempotent). Returns
  /// the last attempt's transport status; `stats`, when non-null,
  /// reports what the retry loop did.
  Status QuoteWithRetry(const std::vector<uint32_t>& bundle,
                        const RetryPolicy& policy, RpcReply* out,
                        RetryStats* stats = nullptr);

  /// AppendBuyers with backoff ONLY on explicit kBackpressure /
  /// kUnavailable replies — the server's guarantee that the append was
  /// NOT applied. Transport failures are returned immediately
  /// (at-most-once: the op may have landed).
  Status AppendBuyersWithRetry(const std::vector<WireBuyer>& buyers,
                               const RetryPolicy& policy, RpcReply* out,
                               RetryStats* stats = nullptr);

  /// ApplySellerDelta with the same at-most-once contract as appends:
  /// backoff only on explicit kBackpressure / kUnavailable replies;
  /// transport failures are returned immediately.
  Status ApplySellerDeltaWithRetry(const market::CellDelta& delta,
                                   const RetryPolicy& policy, RpcReply* out,
                                   RetryStats* stats = nullptr);

  // --- pipelined interface ---------------------------------------------

  /// Sends one request without waiting; returns the request id to match
  /// against Receive()d replies, or an error on transport failure.
  Result<uint64_t> SendQuote(const std::vector<uint32_t>& bundle);
  Result<uint64_t> SendQuoteBatch(
      const std::vector<std::vector<uint32_t>>& bundles);
  Result<uint64_t> SendPurchase(const std::string& sql, double valuation);
  Result<uint64_t> SendAppendBuyers(const std::vector<WireBuyer>& buyers);
  Result<uint64_t> SendApplySellerDelta(const market::CellDelta& delta);
  Result<uint64_t> SendStats();

  /// Blocks for the next reply in server order (parked replies first).
  Status Receive(RpcReply* out);

 private:
  Status SendFrame(const std::vector<uint8_t>& frame);
  /// Blocks until a full frame is available and decodes it.
  Status ReceiveFrame(RpcReply* out);
  /// Blocks until the reply for `id` arrives, parking any others.
  Status WaitFor(uint64_t id, RpcReply* out);
  uint64_t NextId() { return next_id_++; }

  int fd_ = -1;
  RpcClientOptions options_;
  /// Last Connect target, for *WithRetry reconnects.
  std::string address_;
  uint16_t port_ = 0;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> in_;
  /// Replies received while waiting for a different id.
  std::unordered_map<uint64_t, RpcReply> parked_;
};

}  // namespace qp::serve::rpc

#endif  // QP_SERVE_RPC_CLIENT_H_
