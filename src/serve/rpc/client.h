// Blocking client for the RPC serving front-end (serve/rpc/server.h).
//
// One TCP connection per client; NOT thread safe — use one RpcClient
// per thread (the server multiplexes any number of connections onto its
// single loop). Two usage shapes:
//
//  * Call(): one request, block for ITS reply. Replies can interleave
//    across request ids (the server answers writer completions and
//    batched quotes in its own order), so Call() parks frames that
//    answer other outstanding ids and hands them to a later Receive().
//  * Send() + Receive(): pipelined. Send any number of requests without
//    waiting, then Receive() replies as they arrive (in server order,
//    matched to your ids). This is how the open-loop bench drives the
//    server hard enough to exercise tick auto-batching.
//
// Backpressure is a first-class result, not an error: a kBackpressure
// ErrorReply surfaces as RpcResult::code == WireCode::kBackpressure with
// ok() == false, distinguishable from transport failure (Status).
#ifndef QP_SERVE_RPC_CLIENT_H_
#define QP_SERVE_RPC_CLIENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/price_book.h"
#include "serve/rpc/wire.h"

namespace qp::serve::rpc {

/// One decoded reply. `type` tells which payload field is set; an
/// ErrorReply fills `code` + `message` only.
struct RpcReply {
  uint64_t request_id = 0;
  MsgType type = MsgType::kErrorReply;
  WireCode code = WireCode::kOk;
  std::string message;

  Quote quote;                 // kQuoteReply
  std::vector<Quote> quotes;   // kQuoteBatchReply
  WirePurchase purchase;       // kPurchaseReply
  WireAppendResult append;     // kAppendReply
  WireStats stats;             // kStatsReply

  bool ok() const { return code == WireCode::kOk; }
  bool backpressure() const { return code == WireCode::kBackpressure; }
};

class RpcClient {
 public:
  RpcClient() = default;
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;
  RpcClient(RpcClient&& other) noexcept { *this = std::move(other); }
  RpcClient& operator=(RpcClient&& other) noexcept {
    if (this != &other) {
      Disconnect();
      fd_ = other.fd_;
      other.fd_ = -1;
      next_id_ = other.next_id_;
      in_ = std::move(other.in_);
      parked_ = std::move(other.parked_);
    }
    return *this;
  }

  /// Connects (blocking) to the server. Fails if already connected.
  Status Connect(const std::string& address, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  // --- blocking per-op calls -------------------------------------------
  // Each returns the transport status; the reply lands in `out`.
  // Application-level failures (kBadRequest, kBackpressure, ...) are an
  // OK transport status with !out->ok().

  Status Quote(const std::vector<uint32_t>& bundle, RpcReply* out);
  Status QuoteBatch(const std::vector<std::vector<uint32_t>>& bundles,
                    RpcReply* out);
  Status Purchase(const std::string& sql, double valuation, RpcReply* out);
  Status AppendBuyers(const std::vector<WireBuyer>& buyers, RpcReply* out);
  Status Stats(RpcReply* out);

  // --- pipelined interface ---------------------------------------------

  /// Sends one request without waiting; returns the request id to match
  /// against Receive()d replies, or an error on transport failure.
  Result<uint64_t> SendQuote(const std::vector<uint32_t>& bundle);
  Result<uint64_t> SendQuoteBatch(
      const std::vector<std::vector<uint32_t>>& bundles);
  Result<uint64_t> SendPurchase(const std::string& sql, double valuation);
  Result<uint64_t> SendAppendBuyers(const std::vector<WireBuyer>& buyers);
  Result<uint64_t> SendStats();

  /// Blocks for the next reply in server order (parked replies first).
  Status Receive(RpcReply* out);

 private:
  Status SendFrame(const std::vector<uint8_t>& frame);
  /// Blocks until a full frame is available and decodes it.
  Status ReceiveFrame(RpcReply* out);
  /// Blocks until the reply for `id` arrives, parking any others.
  Status WaitFor(uint64_t id, RpcReply* out);
  uint64_t NextId() { return next_id_++; }

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> in_;
  /// Replies received while waiting for a different id.
  std::unordered_map<uint64_t, RpcReply> parked_;
};

}  // namespace qp::serve::rpc

#endif  // QP_SERVE_RPC_CLIENT_H_
