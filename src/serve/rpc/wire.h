// Wire protocol for the serving front-end (serve/rpc/server.h).
//
// Framing: every message travels as one length-prefixed frame —
//
//   [u32 payload_len (LE)] [u8 msg_type] [u64 request_id (LE)] [body]
//
// payload_len counts everything after the 4-byte prefix and must be in
// [kMessageHeaderBytes, kMaxFrameBytes]; anything else is a protocol
// error and the peer closes the connection (an attacker-controlled
// length must never size an allocation). request_id is chosen by the
// client and echoed verbatim on the response, so clients may pipeline
// any number of requests per connection and match replies out of order
// (the server replies in its own completion order: quotes per batching
// tick, writer ops when the writer thread finishes them).
//
// Body encoding is flat little-endian primitives: u8/u32/u64, f64 as the
// IEEE-754 bit pattern in a u64, strings and vectors as a u32 count
// followed by elements. Decoders bound every read against the frame —
// a malformed body yields a kBadRequest ErrorReply, never a crash or
// over-read.
//
// Request → response pairs (all responses may instead be ErrorReply):
//   Quote        {bundle: u32[]}            → QuoteReply {price, version,
//                                              shard_versions: u64[], algo}
//   QuoteBatch   {bundles: u32[][]}         → QuoteBatchReply {quotes[]}
//   Purchase     {sql, valuation}           → PurchaseReply {accepted,
//                                              quote, bundle}
//   AppendBuyers {buyers: {sql, val}[]}     → AppendReply {code, message,
//                                              version}
//   ApplySellerDelta {cell delta}           → ApplySellerDeltaReply {code,
//                                              message, generation}
//   Stats        {}                         → StatsReply
//
// Quote responses carry the per-shard version vector (Quote::
// shard_versions): the scalar `version` is the shards' sum, which is
// monotone but can alias distinct generations — clients that poll for
// book changes must compare the vector.
#ifndef QP_SERVE_RPC_WIRE_H_
#define QP_SERVE_RPC_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "market/support.h"
#include "serve/price_book.h"

namespace qp::serve::rpc {

/// Hard cap on one frame's payload (requests and responses). Large
/// enough for a ~1M-item bundle quote; small enough that a hostile
/// length prefix cannot balloon a connection buffer.
inline constexpr uint32_t kMaxFrameBytes = 8u << 20;
/// The u32 length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;
/// u8 msg_type + u64 request_id, the fixed head of every payload.
inline constexpr size_t kMessageHeaderBytes = 9;

enum class MsgType : uint8_t {
  kQuote = 1,
  kQuoteBatch = 2,
  kPurchase = 3,
  kAppendBuyers = 4,
  kStats = 5,
  kApplySellerDelta = 6,
  kQuoteReply = 129,
  kQuoteBatchReply = 130,
  kPurchaseReply = 131,
  kAppendReply = 132,
  kStatsReply = 133,
  kApplySellerDeltaReply = 134,
  kErrorReply = 255,
};

/// Application status on the wire (ErrorReply / AppendReply).
enum class WireCode : uint8_t {
  kOk = 0,
  /// Malformed body, unknown message type, or invalid SQL.
  kBadRequest = 1,
  /// The writer admission queue is full: the request was NOT applied;
  /// retry after backing off. The explicit backpressure contract.
  kBackpressure = 2,
  /// Server is stopping; the request was not applied.
  kShuttingDown = 3,
  kInternal = 4,
  /// The bundle touches a shard that is still warming after a restore
  /// (graceful degradation); retry later — warm shards keep serving.
  kUnavailable = 5,
};

const char* WireCodeToString(WireCode code);

/// One buyer in an AppendBuyers request.
struct WireBuyer {
  std::string sql;
  double valuation = 0.0;
};

struct WirePurchase {
  bool accepted = false;
  double valuation = 0.0;
  Quote quote;
  std::vector<uint32_t> bundle;
};

struct WireAppendResult {
  WireCode code = WireCode::kOk;
  std::string message;
  /// Merged book version after the append (sum of shard versions).
  uint64_t version = 0;
};

/// Outcome of an ApplySellerDelta request. Same admission semantics as
/// appends: kBackpressure / kShuttingDown mean the delta was NOT
/// applied and the client may retry.
struct WireDeltaResult {
  WireCode code = WireCode::kOk;
  std::string message;
  /// Catalog head generation after the commit (0 on failure).
  uint64_t generation = 0;
};

/// Server-side counters over the wire (StatsReply).
struct WireStats {
  uint32_t num_shards = 0;
  uint64_t version = 0;
  std::vector<uint64_t> shard_versions;
  uint64_t num_edges = 0;
  uint64_t quotes_served = 0;
  uint64_t purchases = 0;
  uint64_t purchases_accepted = 0;
  double sale_revenue = 0.0;
  uint64_t prepared_hits = 0;
  uint64_t prepared_misses = 0;
  uint64_t prepared_evictions = 0;
  uint64_t prepared_entries = 0;
  /// Event-loop ticks that served at least one quote, and the quotes
  /// they coalesced into single QuoteBatch calls.
  uint64_t quote_ticks = 0;
  uint64_t batched_quotes = 0;
  uint64_t writer_rejected = 0;
  uint64_t protocol_errors = 0;
  uint64_t connections_accepted = 0;
  // Versioned-catalog counters (appended after the original fields so
  // the StatsReply body stays prefix-compatible).
  uint64_t catalog_generation = 0;
  uint64_t generations_published = 0;
  uint64_t folds = 0;
  uint64_t fold_retries = 0;
  uint64_t deltas_pending = 0;
  uint64_t deltas_folded = 0;
  uint64_t fold_nanos = 0;
  uint64_t staleness_samples = 0;
  uint64_t staleness_sum = 0;
  uint64_t staleness_max = 0;
  // Multi-reactor front-end counters (appended after the catalog block,
  // keeping the StatsReply body prefix-compatible like that block was).
  uint64_t loops = 0;
  uint64_t writev_calls = 0;
  uint64_t writev_frames = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_bytes = 0;
};

/// Appends little-endian primitives to a byte buffer.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(uint8_t(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(uint8_t(v >> (8 * i)));
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    for (char c : s) out_->push_back(static_cast<uint8_t>(c));
  }
  void U32Vec(const std::vector<uint32_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (uint32_t x : v) U32(x);
  }
  void U64Vec(const std::vector<uint64_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (uint64_t x : v) U64(x);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked reads over one frame's body. Every accessor returns a
/// value (zero/default past the end) and latches failure; callers check
/// ok() once after decoding. Element counts are validated against the
/// bytes actually remaining, so a hostile count cannot drive a large
/// allocation.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(std::span<const uint8_t> body)
      : WireReader(body.data(), body.size()) {}

  bool ok() const { return ok_; }
  /// True when the body was consumed exactly (trailing garbage is a
  /// protocol error).
  bool AtEnd() const { return ok_ && pos_ == size_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + size_t(i)]) << (8 * i);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + size_t(i)]) << (8 * i);
    pos_ += 8;
    return v;
  }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string String() {
    uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<uint32_t> U32Vec() {
    std::vector<uint32_t> v;
    U32VecInto(&v);
    return v;
  }
  /// U32Vec into caller-owned storage (cleared first, capacity
  /// retained) — the server's zero-allocation decode path. Identical
  /// validation and failure latching; U32Vec delegates here.
  bool U32VecInto(std::vector<uint32_t>* out) {
    uint32_t n = U32();
    if (!ok_ || size_ - pos_ < size_t(n) * 4) {
      ok_ = false;
      return false;
    }
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) out->push_back(U32());
    return true;
  }
  std::vector<uint64_t> U64Vec() {
    uint32_t n = U32();
    if (!ok_ || size_ - pos_ < size_t(n) * 8) {
      ok_ = false;
      return {};
    }
    std::vector<uint64_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i) v.push_back(U64());
    return v;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// One parsed frame; `body` aliases the caller's buffer.
struct Frame {
  MsgType type = MsgType::kErrorReply;
  uint64_t request_id = 0;
  std::span<const uint8_t> body;
};

enum class ExtractResult {
  kFrame,     // *out holds the next frame; *consumed bytes were used
  kNeedMore,  // the buffer holds a partial frame; read more bytes
  kError,     // unrecoverable framing error (bad length); close the peer
};

/// Pulls the next frame out of a receive buffer. On kFrame, `out->body`
/// points into `data` and `*consumed` is the total frame size (prefix
/// included); the caller erases those bytes after handling the frame.
ExtractResult ExtractFrame(const uint8_t* data, size_t size, size_t* consumed,
                           Frame* out, uint32_t max_frame = kMaxFrameBytes);

/// Builds a complete frame (length prefix + message header + body).
std::vector<uint8_t> BuildFrame(MsgType type, uint64_t request_id,
                                const std::vector<uint8_t>& body);

// --- request encoders (client) / decoders (server) ----------------------
std::vector<uint8_t> EncodeQuoteRequest(uint64_t id,
                                        const std::vector<uint32_t>& bundle);
std::vector<uint8_t> EncodeQuoteBatchRequest(
    uint64_t id, std::span<const std::vector<uint32_t>> bundles);
std::vector<uint8_t> EncodePurchaseRequest(uint64_t id, const std::string& sql,
                                           double valuation);
std::vector<uint8_t> EncodeAppendRequest(uint64_t id,
                                         std::span<const WireBuyer> buyers);
std::vector<uint8_t> EncodeStatsRequest(uint64_t id);
std::vector<uint8_t> EncodeApplySellerDeltaRequest(
    uint64_t id, const market::CellDelta& delta);

bool DecodeQuoteRequest(std::span<const uint8_t> body,
                        std::vector<uint32_t>* bundle);
/// DecodeQuoteRequest reusing `bundle`'s capacity (cleared first) — the
/// event loops' per-tick decode path. DecodeQuoteRequest delegates here.
bool DecodeQuoteRequestInto(std::span<const uint8_t> body,
                            std::vector<uint32_t>* bundle);
bool DecodeQuoteBatchRequest(std::span<const uint8_t> body,
                             std::vector<std::vector<uint32_t>>* bundles);
bool DecodePurchaseRequest(std::span<const uint8_t> body, std::string* sql,
                           double* valuation);
bool DecodeAppendRequest(std::span<const uint8_t> body,
                         std::vector<WireBuyer>* buyers);
bool DecodeApplySellerDeltaRequest(std::span<const uint8_t> body,
                                   market::CellDelta* delta);

// --- response encoders (server) / decoders (client) ---------------------
std::vector<uint8_t> EncodeQuoteReply(uint64_t id, const Quote& quote);
std::vector<uint8_t> EncodeQuoteBatchReply(uint64_t id,
                                           std::span<const Quote> quotes);
std::vector<uint8_t> EncodePurchaseReply(uint64_t id,
                                         const WirePurchase& purchase);
std::vector<uint8_t> EncodeAppendReply(uint64_t id,
                                       const WireAppendResult& result);
std::vector<uint8_t> EncodeStatsReply(uint64_t id, const WireStats& stats);
std::vector<uint8_t> EncodeApplySellerDeltaReply(uint64_t id,
                                                 const WireDeltaResult& result);
std::vector<uint8_t> EncodeErrorReply(uint64_t id, WireCode code,
                                      const std::string& message);

// --- in-place response encoders (server flush path) ----------------------
// Append one complete frame (length prefix + message header + body) to
// `out`, reusing its capacity — the per-connection encode arenas' zero-
// allocation path. Byte-identical to the Encode* forms above, which
// delegate here.
void AppendQuoteReplyFrame(uint64_t id, const Quote& quote,
                           std::vector<uint8_t>* out);
void AppendQuoteBatchReplyFrame(uint64_t id, std::span<const Quote> quotes,
                                std::vector<uint8_t>* out);
void AppendPurchaseReplyFrame(uint64_t id, const WirePurchase& purchase,
                              std::vector<uint8_t>* out);
void AppendAppendReplyFrame(uint64_t id, const WireAppendResult& result,
                            std::vector<uint8_t>* out);
void AppendStatsReplyFrame(uint64_t id, const WireStats& stats,
                           std::vector<uint8_t>* out);
void AppendApplySellerDeltaReplyFrame(uint64_t id,
                                      const WireDeltaResult& result,
                                      std::vector<uint8_t>* out);
void AppendErrorReplyFrame(uint64_t id, WireCode code,
                           const std::string& message,
                           std::vector<uint8_t>* out);

bool DecodeQuoteReply(std::span<const uint8_t> body, Quote* quote);
bool DecodeQuoteBatchReply(std::span<const uint8_t> body,
                           std::vector<Quote>* quotes);
bool DecodePurchaseReply(std::span<const uint8_t> body, WirePurchase* purchase);
bool DecodeAppendReply(std::span<const uint8_t> body, WireAppendResult* result);
bool DecodeStatsReply(std::span<const uint8_t> body, WireStats* stats);
bool DecodeApplySellerDeltaReply(std::span<const uint8_t> body,
                                 WireDeltaResult* result);
bool DecodeErrorReply(std::span<const uint8_t> body, WireCode* code,
                      std::string* message);

}  // namespace qp::serve::rpc

#endif  // QP_SERVE_RPC_WIRE_H_
