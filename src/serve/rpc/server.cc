#include "serve/rpc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "db/parser.h"
#include "serve/rpc/wire.h"

namespace qp::serve::rpc {
namespace {

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Read chunk for a connection's receive scratch; the buffer grows to
/// this once and is reused for every subsequent read.
constexpr size_t kReadChunk = 64 * 1024;
/// A receive buffer that ballooned past this (a burst of max-size
/// frames) is released once empty instead of pinning the high-water
/// mark forever.
constexpr size_t kRecvBufCapBytes = 256 * 1024;
/// Encode-arena slots keep their capacity for reuse up to this; a slot
/// stretched further by one oversized reply is freed after flushing.
constexpr size_t kFrameSlotCapBytes = 64 * 1024;
/// Iovec bound for one vectored flush; frames beyond this wait for the
/// next writev (bounded stack usage, and IOV_MAX is only 1024 anyway).
constexpr int kMaxIovPerFlush = 64;

}  // namespace

struct RpcServer::Impl {
  // --- connection state (owning-loop-thread-private) --------------------
  struct Connection {
    int fd = -1;
    /// Receive scratch: reads land directly in the tail; consumed frames
    /// are erased from the front. Capacity is the reuse pool.
    std::vector<uint8_t> in;
    /// Encode arena: a FIFO of pooled frame buffers. frames[frame_head ..
    /// frame_head + frame_count) are queued responses (oldest first);
    /// slots outside that window are free but keep their capacity, so a
    /// steady request/reply rhythm re-acquires the same storage with no
    /// allocation. AcquireFrame compacts the window to the front (a
    /// rotate of vector headers, no heap traffic) before growing.
    std::vector<std::vector<uint8_t>> frames;
    size_t frame_head = 0;
    size_t frame_count = 0;
    /// Bytes of frames[frame_head] already on the wire.
    size_t out_offset = 0;
    bool epollout_armed = false;
  };

  /// One quote-shaped request captured during a tick, answered by the
  /// tick's single engine batch call. Bundles live in the loop's slot
  /// arena: indices [first, first + count).
  struct PendingQuote {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    bool is_batch = false;
    size_t first = 0;
    size_t count = 0;
  };

  // --- writer queue (shared: loop threads -> writer thread) -------------
  enum class WriterOp : uint8_t { kAppend, kSellerDelta };
  struct WriterJob {
    int loop = 0;  // owning loop of conn_id; completions route back here
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    WriterOp op = WriterOp::kAppend;
    std::vector<WireBuyer> buyers;       // op == kAppend
    market::CellDelta delta;             // op == kSellerDelta
  };
  struct WriterDone {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    WriterOp op = WriterOp::kAppend;
    /// For seller deltas `version` carries the catalog generation.
    WireAppendResult result;
  };

  // --- one reactor ------------------------------------------------------
  struct EventLoop {
    int index = 0;
    int listen_fd = -1;  // -1 on loops without a listener (handoff mode)
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;

    std::unordered_map<uint64_t, Connection> conns;
    uint64_t next_conn_id = 2;  // 0 = listen socket, 1 = wake eventfd

    /// Handoff inbox: accepted fds pushed by loop 0 in fallback mode,
    /// adopted by this loop at the top of its next tick.
    std::mutex inbox_mutex;
    std::vector<int> inbox;

    // Tick scratch, loop-thread-private. The bundle slots are a grow-
    // only arena: slot i is reused every tick, keeping its capacity.
    std::vector<PendingQuote> tick_quotes;
    std::vector<std::vector<uint32_t>> bundles;
    size_t num_bundles = 0;
    ShardedPricingEngine::QuoteBatchScratch batch;
    /// Completions moved out of the shared deque for lock-free replay.
    std::vector<WriterDone> done_scratch;
    /// Capacity of the most recently acquired encode slot, for the
    /// pool_bytes delta in CommitFrame.
    size_t acquired_cap = 0;

    // Per-loop counters; stats() aggregates across loops.
    std::atomic<uint64_t> connections_accepted{0}, connections_closed{0},
        frames_received{0}, quote_requests{0}, quote_batch_requests{0},
        purchase_requests{0}, append_requests{0}, seller_delta_requests{0},
        stats_requests{0}, quote_ticks{0}, batched_quotes{0},
        protocol_errors{0}, writev_calls{0}, writev_frames{0}, pool_hits{0},
        pool_bytes{0};
    /// Latest options.alloc_probe sample, stored at the end of a tick.
    std::atomic<uint64_t> alloc_probe_last{0};
  };

  ShardedPricingEngine* engine;
  db::Database* db;
  RpcServerOptions options;

  std::vector<std::unique_ptr<EventLoop>> loops;
  /// True: every loop owns a SO_REUSEPORT listener (kernel balances
  /// accepts). False: loop 0 owns the only listener and hands accepted
  /// fds round-robin to the other loops.
  bool reuseport = false;
  /// Round-robin cursor for handoff mode; loop-0-thread-private.
  size_t next_accept_loop = 0;
  uint16_t bound_port = 0;
  bool started = false;

  std::thread writer_thread;
  std::atomic<bool> stopping{false};
  std::atomic<bool> writer_exited{false};
  /// Restarted by Stop() before `stopping` becomes visible; all threads
  /// measure their drain budget against it.
  Stopwatch drain_watch;

  std::mutex writer_mutex;
  std::condition_variable writer_cv;
  std::deque<WriterJob> writer_queue;
  /// Per-loop completion queues (guarded by writer_mutex too): the
  /// writer routes each finished job back to the loop owning its
  /// connection.
  std::vector<std::deque<WriterDone>> writer_done;
  std::atomic<uint64_t> writer_enqueued{0}, writer_rejected{0};

  ~Impl() { CloseFds(); }

  void CloseFds() {
    for (auto& loop : loops) {
      if (loop->listen_fd >= 0) close(loop->listen_fd);
      if (loop->epoll_fd >= 0) close(loop->epoll_fd);
      if (loop->wake_fd >= 0) close(loop->wake_fd);
      loop->listen_fd = loop->epoll_fd = loop->wake_fd = -1;
      for (int fd : loop->inbox) close(fd);
      loop->inbox.clear();
    }
  }

  /// Opens a non-blocking listener on options.bind_address. The first
  /// listener resolves an ephemeral options.port and records it in
  /// bound_port; later ones (the SO_REUSEPORT siblings) bind the same
  /// resolved port.
  Status OpenListener(bool with_reuseport, int* out_fd) {
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return Status::Internal("socket() failed");
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (with_reuseport) {
#ifdef SO_REUSEPORT
      if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
        close(fd);
        return Status::Internal("SO_REUSEPORT unsupported");
      }
#else
      close(fd);
      return Status::Internal("SO_REUSEPORT unavailable");
#endif
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(bound_port != 0 ? bound_port : options.port);
    if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      return Status::InvalidArgument("bad bind address: " +
                                     options.bind_address);
    }
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd);
      return Status::Internal("bind() failed: " +
                              std::string(std::strerror(errno)));
    }
    if (listen(fd, options.listen_backlog) != 0) {
      close(fd);
      return Status::Internal("listen() failed");
    }
    if (bound_port == 0) {
      socklen_t len = sizeof(addr);
      getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
      bound_port = ntohs(addr.sin_port);
    }
    *out_fd = fd;
    return Status::OK();
  }

  Status Start() {
    if (started) return Status::FailedPrecondition("RpcServer already started");
    const int num_loops = std::max(1, options.num_loops);
    loops.clear();
    loops.reserve(static_cast<size_t>(num_loops));
    for (int i = 0; i < num_loops; ++i) {
      loops.push_back(std::make_unique<EventLoop>());
      loops.back()->index = i;
    }
    writer_done.clear();
    writer_done.resize(static_cast<size_t>(num_loops));

    // Accept sharding: one SO_REUSEPORT listener per loop where the
    // platform cooperates, otherwise a single listener on loop 0 with
    // round-robin handoff. A REUSEPORT failure after the first bind can
    // leave an ephemeral port half-claimed, so the fallback re-resolves
    // from scratch.
    reuseport = num_loops > 1 && !options.force_accept_handoff;
    if (reuseport) {
      Status status = Status::OK();
      for (auto& loop : loops) {
        status = OpenListener(/*with_reuseport=*/true, &loop->listen_fd);
        if (!status.ok()) break;
      }
      if (!status.ok()) {
        for (auto& loop : loops) {
          if (loop->listen_fd >= 0) close(loop->listen_fd);
          loop->listen_fd = -1;
        }
        bound_port = 0;
        reuseport = false;
      }
    }
    if (!reuseport) {
      Status status = OpenListener(/*with_reuseport=*/false,
                                   &loops[0]->listen_fd);
      if (!status.ok()) {
        CloseFds();
        return status;
      }
    }

    for (auto& loop : loops) {
      loop->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
      loop->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
        CloseFds();
        return Status::Internal("epoll/eventfd setup failed");
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      if (loop->listen_fd >= 0) {
        ev.data.u64 = 0;
        epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->listen_fd, &ev);
      }
      ev.data.u64 = 1;
      epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    }

    started = true;
    for (auto& loop : loops) {
      EventLoop* raw = loop.get();
      loop->thread = std::thread([this, raw] { LoopThread(*raw); });
    }
    writer_thread = std::thread([this] {
      WriterThread();
      writer_exited.store(true);
      WakeAll();  // draining loops poll writer_exited each tick
    });
    return Status::OK();
  }

  void Stop() {
    if (!started || stopping.load()) {
      // Not started or a second Stop(): just make sure threads are gone.
      if (writer_thread.joinable()) writer_thread.join();
      for (auto& loop : loops) {
        if (loop->thread.joinable()) loop->thread.join();
      }
      return;
    }
    drain_watch.Restart();
    stopping.store(true);
    // All threads drain concurrently: the writer keeps executing queued
    // appends, every loop keeps flushing replies (and serving already-
    // read requests) until DrainComplete() or the budget runs out.
    writer_cv.notify_all();
    WakeAll();
    writer_thread.join();
    WakeAll();
    for (auto& loop : loops) loop->thread.join();
    CloseFds();
  }

  bool DrainExpired() {
    return options.drain_timeout_ms <= 0 ||
           drain_watch.ElapsedMillis() >=
               static_cast<double>(options.drain_timeout_ms);
  }

  /// Loop-thread only: true once the writer is gone, this loop's
  /// completions are delivered, no handed-off connection awaits
  /// adoption, and every owned connection's out-queue hit the wire.
  bool DrainComplete(EventLoop& loop) {
    if (!writer_exited.load()) return false;
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      if (!writer_done[static_cast<size_t>(loop.index)].empty()) return false;
    }
    {
      std::lock_guard<std::mutex> lock(loop.inbox_mutex);
      if (!loop.inbox.empty()) return false;
    }
    for (const auto& entry : loop.conns) {
      if (entry.second.frame_count > 0) return false;
    }
    return true;
  }

  void Wake(EventLoop& loop) {
    uint64_t one = 1;
    for (;;) {
      if (write(loop.wake_fd, &one, sizeof(one)) >= 0 || errno != EINTR) {
        return;
      }
    }
  }

  void WakeAll() {
    for (auto& loop : loops) Wake(*loop);
  }

  // --- writer thread ----------------------------------------------------
  void WriterThread() {
    for (;;) {
      WriterJob job;
      {
        std::unique_lock<std::mutex> lock(writer_mutex);
        writer_cv.wait(lock, [this] {
          return stopping.load() || !writer_queue.empty();
        });
        if (writer_queue.empty()) return;  // stopping, queue drained
        if (stopping.load() && DrainExpired()) {
          // Drain budget exhausted: fail everything still queued; each
          // loop's final tick delivers the replies it can. (Within the
          // budget, queued appends keep EXECUTING — each was already
          // admitted, so the client was promised a real answer.)
          while (!writer_queue.empty()) {
            WriterJob dropped = std::move(writer_queue.front());
            writer_queue.pop_front();
            writer_done[static_cast<size_t>(dropped.loop)].push_back(
                {dropped.conn_id, dropped.request_id, dropped.op,
                 {WireCode::kShuttingDown, "server stopping", 0}});
          }
          WakeAll();
          return;
        }
        job = std::move(writer_queue.front());
        writer_queue.pop_front();
      }
      WriterDone done{job.conn_id, job.request_id, job.op,
                      job.op == WriterOp::kAppend ? ExecuteAppend(job)
                                                  : ExecuteSellerDelta(job)};
      {
        std::lock_guard<std::mutex> lock(writer_mutex);
        writer_done[static_cast<size_t>(job.loop)].push_back(std::move(done));
      }
      Wake(*loops[static_cast<size_t>(job.loop)]);
    }
  }

  WireAppendResult ExecuteAppend(const WriterJob& job) {
    std::vector<db::BoundQuery> queries;
    core::Valuations valuations;
    queries.reserve(job.buyers.size());
    for (const WireBuyer& buyer : job.buyers) {
      auto parsed = db::ParseQuery(buyer.sql, *db);
      if (!parsed.ok()) {
        // All-or-nothing: a bad buyer fails the whole request before the
        // engine sees any of it.
        return {WireCode::kBadRequest,
                "AppendBuyers: " + parsed.status().ToString(), 0};
      }
      queries.push_back(std::move(*parsed));
      valuations.push_back(buyer.valuation);
    }
    Status status = engine->AppendBuyers(queries, valuations);
    if (!status.ok()) return {WireCode::kInternal, status.ToString(), 0};
    return {WireCode::kOk, "", engine->snapshot().version()};
  }

  WireAppendResult ExecuteSellerDelta(const WriterJob& job) {
    // Bounds-check against the live schema before the engine sees it: a
    // hostile delta must fail as kBadRequest, not corrupt the catalog.
    const market::CellDelta& d = job.delta;
    if (d.table < 0 || d.table >= db->num_tables()) {
      return {WireCode::kBadRequest, "ApplySellerDelta: table out of range", 0};
    }
    const db::Table& table = db->table(d.table);
    if (d.row < 0 || d.row >= table.num_rows() || d.column < 0 ||
        d.column >= table.schema().num_columns()) {
      return {WireCode::kBadRequest, "ApplySellerDelta: cell out of range", 0};
    }
    Status status = engine->ApplySellerDelta(*db, d);
    if (!status.ok()) return {WireCode::kInternal, status.ToString(), 0};
    return {WireCode::kOk, "", engine->catalog().head_generation()};
  }

  // --- event loop -------------------------------------------------------
  void LoopThread(EventLoop& loop) {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    bool draining = false;
    for (;;) {
      // While draining, tick at ~10ms so drain progress (writer exit,
      // blocked out-queues opening up) is noticed without socket events.
      int n = epoll_wait(loop.epoll_fd, events, kMaxEvents,
                         draining ? 10 : -1);
      if (n < 0 && errno != EINTR) break;
      if (!draining && stopping.load()) {
        draining = true;
        // Connections that finished their handshake before Stop() sit in
        // the listen backlog (the peer's connect() already succeeded and
        // it may have requests in flight). Admit them so they drain to
        // real replies below; closing the listener with them still queued
        // would RST the peer instead.
        if (loop.listen_fd >= 0) {
          AcceptAll(loop);
          epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, loop.listen_fd, nullptr);
        }
      }
      if (!reuseport && loop.index != 0) DrainInbox(loop);
      loop.tick_quotes.clear();
      loop.num_bundles = 0;
      for (int i = 0; i < n; ++i) {
        uint64_t id = events[i].data.u64;
        uint32_t mask = events[i].events;
        if (id == 0) {
          if (!draining) AcceptAll(loop);
        } else if (id == 1) {
          uint64_t drained;
          for (;;) {
            ssize_t r = read(loop.wake_fd, &drained, sizeof(drained));
            if (r > 0) continue;
            if (r < 0 && errno == EINTR) continue;
            break;
          }
        } else {
          auto it = loop.conns.find(id);
          if (it == loop.conns.end()) continue;
          if (mask & (EPOLLHUP | EPOLLERR)) {
            CloseConn(loop, id);
            continue;
          }
          if (mask & EPOLLIN) {
            if (!ReadConn(loop, id, it->second)) continue;
          }
          if (mask & EPOLLOUT) {
            auto again = loop.conns.find(id);
            if (again != loop.conns.end()) FlushWrites(loop, id, again->second);
          }
        }
      }
      DeliverWriterCompletions(loop);
      ServeQuoteTick(loop);
      if (options.alloc_probe != nullptr) {
        loop.alloc_probe_last.store(options.alloc_probe(),
                                    std::memory_order_release);
      }
      // Only a zero-event (pure timeout) tick can end the drain early:
      // level-triggered epoll reports any unread buffered request, and
      // close()-ing a socket with unread inbound data sends RST, which
      // would discard replies the peer has not consumed yet.
      if (draining && ((n == 0 && DrainComplete(loop)) || DrainExpired())) {
        break;
      }
    }
    // Final flush: fail any of THIS loop's appends the writer never
    // reached (possible only when the drain deadline expired), deliver
    // whatever responses are already queued without blocking, then drop
    // the connections. Queue edits race-free with a still-draining
    // writer: both sides mutate under writer_mutex, so each job is
    // answered exactly once, and jobs for other loops stay put for
    // their owners' final flushes.
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      for (auto it = writer_queue.begin(); it != writer_queue.end();) {
        if (it->loop != loop.index) {
          ++it;
          continue;
        }
        writer_done[static_cast<size_t>(loop.index)].push_back(
            {it->conn_id, it->request_id, it->op,
             {WireCode::kShuttingDown, "server stopping", 0}});
        it = writer_queue.erase(it);
      }
    }
    DeliverWriterCompletions(loop);
    DrainInbox(loop);  // adopt stragglers so their fds close cleanly
    std::vector<uint64_t> ids;
    ids.reserve(loop.conns.size());
    for (auto& [id, conn] : loop.conns) {
      FlushWrites(loop, id, conn);
      ids.push_back(id);
    }
    for (uint64_t id : ids) CloseConn(loop, id);
  }

  void AcceptAll(EventLoop& loop) {
    if (loop.listen_fd < 0) return;
    for (;;) {
      int fd = accept4(loop.listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN (drained) or a transient per-connection error
      }
      SetNoDelay(fd);
      loop.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      if (reuseport || loops.size() == 1) {
        AdmitFd(loop, fd);
        continue;
      }
      // Handoff fallback: loop 0 owns the only listener and deals
      // accepted fds round-robin; targets adopt them from their inbox at
      // the top of the next tick.
      size_t target = next_accept_loop++ % loops.size();
      if (static_cast<int>(target) == loop.index) {
        AdmitFd(loop, fd);
        continue;
      }
      EventLoop& peer = *loops[target];
      {
        std::lock_guard<std::mutex> lock(peer.inbox_mutex);
        peer.inbox.push_back(fd);
      }
      Wake(peer);
    }
  }

  void AdmitFd(EventLoop& loop, int fd) {
    uint64_t id = loop.next_conn_id++;
    Connection& conn = loop.conns[id];
    conn.fd = fd;
    // The receive scratch lives at its cap from the start: reads resize
    // within this capacity, so the steady-state read path never touches
    // the allocator (and never oscillates around the trim threshold).
    conn.in.reserve(kRecvBufCapBytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  }

  void DrainInbox(EventLoop& loop) {
    for (;;) {
      int fd = -1;
      {
        std::lock_guard<std::mutex> lock(loop.inbox_mutex);
        if (loop.inbox.empty()) return;
        fd = loop.inbox.front();
        loop.inbox.erase(loop.inbox.begin());
      }
      AdmitFd(loop, fd);
    }
  }

  void CloseConn(EventLoop& loop, uint64_t id) {
    auto it = loop.conns.find(id);
    if (it == loop.conns.end()) return;
    size_t pooled = 0;
    for (const std::vector<uint8_t>& slot : it->second.frames) {
      pooled += slot.capacity();
    }
    if (pooled > 0) {
      loop.pool_bytes.fetch_sub(pooled, std::memory_order_relaxed);
    }
    epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    close(it->second.fd);
    loop.conns.erase(it);
    loop.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }

  /// Reads everything available into the connection's reusable receive
  /// buffer, extracting and dispatching complete frames. Returns false
  /// if the connection was closed.
  bool ReadConn(EventLoop& loop, uint64_t id, Connection& conn) {
    for (;;) {
      const size_t have = conn.in.size();
      // Read straight into the buffer's tail: the capacity grows to its
      // high-water mark once and every later read reuses it.
      conn.in.resize(have + kReadChunk);
      ssize_t n = read(conn.fd, conn.in.data() + have, kReadChunk);
      if (n > 0) {
        conn.in.resize(have + static_cast<size_t>(n));
        continue;
      }
      conn.in.resize(have);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Peer closed (possibly mid-frame) or hard error: any buffered
      // partial frame dies with the connection.
      CloseConn(loop, id);
      return false;
    }
    size_t pos = 0;
    while (pos < conn.in.size()) {
      Frame frame;
      size_t consumed = 0;
      ExtractResult result =
          ExtractFrame(conn.in.data() + pos, conn.in.size() - pos, &consumed,
                       &frame, options.max_frame_bytes);
      if (result == ExtractResult::kNeedMore) break;
      if (result == ExtractResult::kError) {
        // A bad length prefix desynchronizes the stream; nothing after
        // it can be trusted, so drop the connection.
        loop.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        CloseConn(loop, id);
        return false;
      }
      loop.frames_received.fetch_add(1, std::memory_order_relaxed);
      if (!Dispatch(loop, id, frame)) {
        // Dispatch closed the connection.
        return false;
      }
      pos += consumed;
      // Dispatch may have queued writes, but never touches conn.in.
    }
    if (pos > 0) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<ptrdiff_t>(pos));
    }
    if (conn.in.empty() && conn.in.capacity() > kRecvBufCapBytes) {
      // One burst of jumbo frames must not pin the high-water capacity;
      // drop back to the standing cap-sized scratch.
      std::vector<uint8_t>().swap(conn.in);
      conn.in.reserve(kRecvBufCapBytes);
    }
    return true;
  }

  /// Next free bundle slot in the loop's tick arena (cleared, capacity
  /// retained). Roll failed decodes back by restoring num_bundles.
  std::vector<uint32_t>* NextBundleSlot(EventLoop& loop) {
    if (loop.num_bundles == loop.bundles.size()) {
      loop.bundles.emplace_back();  // high-water growth, then reused
    }
    return &loop.bundles[loop.num_bundles++];
  }

  /// Handles one decoded frame. Returns false if the connection was
  /// closed during dispatch.
  bool Dispatch(EventLoop& loop, uint64_t id, const Frame& frame) {
    switch (frame.type) {
      case MsgType::kQuote: {
        loop.quote_requests.fetch_add(1, std::memory_order_relaxed);
        const size_t first = loop.num_bundles;
        if (!DecodeQuoteRequestInto(frame.body, NextBundleSlot(loop))) {
          loop.num_bundles = first;  // return the slot
          return BadRequest(loop, id, frame.request_id,
                            "malformed Quote body");
        }
        loop.tick_quotes.push_back({id, frame.request_id, false, first, 1});
        return true;
      }
      case MsgType::kQuoteBatch: {
        loop.quote_batch_requests.fetch_add(1, std::memory_order_relaxed);
        const size_t first = loop.num_bundles;
        // Decoded straight into consecutive arena slots (the in-place
        // form of DecodeQuoteBatchRequest: same bounds checks, same
        // trailing-garbage rejection).
        WireReader r(frame.body);
        uint32_t count = r.U32();
        bool ok = r.ok();
        for (uint32_t k = 0; ok && k < count; ++k) {
          ok = r.U32VecInto(NextBundleSlot(loop));
        }
        if (!ok || !r.AtEnd()) {
          loop.num_bundles = first;
          return BadRequest(loop, id, frame.request_id,
                            "malformed QuoteBatch body");
        }
        loop.tick_quotes.push_back(
            {id, frame.request_id, true, first, static_cast<size_t>(count)});
        return true;
      }
      case MsgType::kPurchase: {
        loop.purchase_requests.fetch_add(1, std::memory_order_relaxed);
        std::string sql;
        double valuation = 0.0;
        if (!DecodePurchaseRequest(frame.body, &sql, &valuation)) {
          return BadRequest(loop, id, frame.request_id,
                            "malformed Purchase body");
        }
        auto parsed = db::ParseQuery(sql, *db);
        if (!parsed.ok()) {
          return BadRequest(loop, id, frame.request_id,
                            "Purchase: " + parsed.status().ToString());
        }
        // Reader-side end to end (overlay probe + snapshot pin + atomic
        // sale counters): never blocks behind the engine's writer.
        PurchaseOutcome outcome = engine->Purchase(*parsed, valuation);
        auto it = loop.conns.find(id);
        if (it == loop.conns.end()) return false;
        if (!outcome.status.ok()) {
          // Bundle touches a shard still warming after restore: the sale
          // was NOT attempted — the client may retry.
          AppendErrorReplyFrame(frame.request_id, WireCode::kUnavailable,
                                outcome.status.message(),
                                AcquireFrame(loop, it->second));
          return CommitFrame(loop, id, it->second);
        }
        WirePurchase reply;
        reply.accepted = outcome.accepted;
        reply.valuation = outcome.valuation;
        reply.quote = std::move(outcome.quote);
        reply.bundle = std::move(outcome.bundle);
        AppendPurchaseReplyFrame(frame.request_id, reply,
                                 AcquireFrame(loop, it->second));
        return CommitFrame(loop, id, it->second);
      }
      case MsgType::kAppendBuyers: {
        loop.append_requests.fetch_add(1, std::memory_order_relaxed);
        if (stopping.load()) {
          // Draining: only appends admitted BEFORE Stop() get executed;
          // new ones are refused so the writer can actually finish.
          return ErrorReply(loop, id, frame.request_id,
                            WireCode::kShuttingDown, "server stopping");
        }
        WriterJob job;
        job.loop = loop.index;
        job.conn_id = id;
        job.request_id = frame.request_id;
        if (!DecodeAppendRequest(frame.body, &job.buyers)) {
          return BadRequest(loop, id, frame.request_id,
                            "malformed AppendBuyers body");
        }
        {
          std::lock_guard<std::mutex> lock(writer_mutex);
          if (writer_queue.size() >= options.writer_queue_depth) {
            writer_rejected.fetch_add(1, std::memory_order_relaxed);
            return ErrorReply(loop, id, frame.request_id,
                              WireCode::kBackpressure,
                              "writer queue full; retry later");
          }
          writer_queue.push_back(std::move(job));
          writer_enqueued.fetch_add(1, std::memory_order_relaxed);
        }
        writer_cv.notify_one();
        return true;
      }
      case MsgType::kApplySellerDelta: {
        loop.seller_delta_requests.fetch_add(1, std::memory_order_relaxed);
        if (stopping.load()) {
          // Same drain contract as appends: only deltas admitted BEFORE
          // Stop() execute; new ones are refused, NOT applied.
          return ErrorReply(loop, id, frame.request_id,
                            WireCode::kShuttingDown, "server stopping");
        }
        WriterJob job;
        job.loop = loop.index;
        job.conn_id = id;
        job.request_id = frame.request_id;
        job.op = WriterOp::kSellerDelta;
        if (!DecodeApplySellerDeltaRequest(frame.body, &job.delta)) {
          return BadRequest(loop, id, frame.request_id,
                            "malformed ApplySellerDelta body");
        }
        {
          std::lock_guard<std::mutex> lock(writer_mutex);
          if (writer_queue.size() >= options.writer_queue_depth) {
            writer_rejected.fetch_add(1, std::memory_order_relaxed);
            return ErrorReply(loop, id, frame.request_id,
                              WireCode::kBackpressure,
                              "writer queue full; retry later");
          }
          writer_queue.push_back(std::move(job));
          writer_enqueued.fetch_add(1, std::memory_order_relaxed);
        }
        writer_cv.notify_one();
        return true;
      }
      case MsgType::kStats: {
        loop.stats_requests.fetch_add(1, std::memory_order_relaxed);
        auto it = loop.conns.find(id);
        if (it == loop.conns.end()) return false;
        AppendStatsReplyFrame(frame.request_id, BuildStats(),
                              AcquireFrame(loop, it->second));
        return CommitFrame(loop, id, it->second);
      }
      default:
        loop.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        return ErrorReply(loop, id, frame.request_id, WireCode::kBadRequest,
                          "unknown message type");
    }
  }

  bool ErrorReply(EventLoop& loop, uint64_t id, uint64_t request_id,
                  WireCode code, const std::string& msg) {
    auto it = loop.conns.find(id);
    if (it == loop.conns.end()) return false;
    AppendErrorReplyFrame(request_id, code, msg, AcquireFrame(loop, it->second));
    return CommitFrame(loop, id, it->second);
  }

  bool BadRequest(EventLoop& loop, uint64_t id, uint64_t request_id,
                  const std::string& msg) {
    loop.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(loop, id, request_id, WireCode::kBadRequest, msg);
  }

  /// Everything here is lock-free against the engine's writer: merged
  /// view for versions/edges, reader_stats() for the counters.
  WireStats BuildStats() {
    WireStats out;
    MergedBookView view = engine->snapshot();
    out.num_shards = static_cast<uint32_t>(view.num_shards());
    out.shard_versions = view.version_vector();
    out.version = view.version();
    for (int s = 0; s < view.num_shards(); ++s) {
      out.num_edges += static_cast<uint64_t>(view.shard(s).num_edges());
    }
    ShardedPricingEngine::ReaderStats reader = engine->reader_stats();
    out.quotes_served = reader.quotes_served;
    out.purchases = reader.purchases;
    out.purchases_accepted = reader.purchases_accepted;
    out.sale_revenue = reader.sale_revenue;
    out.prepared_hits = reader.prepared.hits;
    out.prepared_misses = reader.prepared.misses;
    out.prepared_evictions = reader.prepared.evictions;
    out.prepared_entries = reader.prepared.entries;
    out.catalog_generation = engine->catalog().head_generation();
    out.generations_published = reader.catalog.generations_published;
    out.folds = reader.catalog.folds;
    out.fold_retries = reader.catalog.fold_retries;
    out.deltas_pending = reader.catalog.deltas_pending;
    out.deltas_folded = reader.catalog.deltas_folded;
    out.fold_nanos = reader.catalog.fold_nanos;
    out.staleness_samples = reader.catalog.staleness_samples;
    out.staleness_sum = reader.catalog.staleness_sum;
    out.staleness_max = reader.catalog.staleness_max;
    out.writer_rejected = writer_rejected.load(std::memory_order_relaxed);
    out.loops = static_cast<uint64_t>(loops.size());
    for (const auto& loop : loops) {
      out.quote_ticks += loop->quote_ticks.load(std::memory_order_relaxed);
      out.batched_quotes +=
          loop->batched_quotes.load(std::memory_order_relaxed);
      out.protocol_errors +=
          loop->protocol_errors.load(std::memory_order_relaxed);
      out.connections_accepted +=
          loop->connections_accepted.load(std::memory_order_relaxed);
      out.writev_calls += loop->writev_calls.load(std::memory_order_relaxed);
      out.writev_frames += loop->writev_frames.load(std::memory_order_relaxed);
      out.pool_hits += loop->pool_hits.load(std::memory_order_relaxed);
      out.pool_bytes += loop->pool_bytes.load(std::memory_order_relaxed);
    }
    return out;
  }

  /// The auto-batching heart: every quote-shaped request the tick
  /// decoded — across all of this loop's connections — prices through
  /// ONE engine batch call (one snapshot/epoch pin per shard for the
  /// whole loop-tick), then the results fan back out to their requests
  /// in arrival order. Allocation-free in the steady state: bundles sit
  /// in the loop's slot arena, the engine fills the loop's batch
  /// scratch, and replies encode into pooled connection buffers.
  void ServeQuoteTick(EventLoop& loop) {
    if (loop.tick_quotes.empty()) return;
    std::span<const std::vector<uint32_t>> flat(loop.bundles.data(),
                                                loop.num_bundles);
    // TryQuoteBatchInto degrades gracefully during a restore: bundles
    // that touch a still-warming shard come back Unavailable instead of
    // a wrongly-low cold price. Identical to QuoteBatch once all shards
    // are warm (one relaxed load on that path).
    engine->TryQuoteBatchInto(flat, &loop.batch);
    loop.quote_ticks.fetch_add(1, std::memory_order_relaxed);
    loop.batched_quotes.fetch_add(flat.size(), std::memory_order_relaxed);
    for (const PendingQuote& pending : loop.tick_quotes) {
      const Status* first_bad = nullptr;
      for (size_t k = 0; k < pending.count; ++k) {
        if (!loop.batch.statuses[pending.first + k].ok()) {
          first_bad = &loop.batch.statuses[pending.first + k];
          break;
        }
      }
      auto it = loop.conns.find(pending.conn_id);
      if (it == loop.conns.end()) continue;
      if (first_bad != nullptr) {
        // All-or-nothing per request: a batch whose generation cannot be
        // uniform (some bundles refused) is refused whole.
        AppendErrorReplyFrame(pending.request_id, WireCode::kUnavailable,
                              first_bad->message(),
                              AcquireFrame(loop, it->second));
      } else if (pending.is_batch) {
        AppendQuoteBatchReplyFrame(
            pending.request_id,
            std::span<const Quote>(loop.batch.quotes.data() + pending.first,
                                   pending.count),
            AcquireFrame(loop, it->second));
      } else {
        AppendQuoteReplyFrame(pending.request_id,
                              loop.batch.quotes[pending.first],
                              AcquireFrame(loop, it->second));
      }
      CommitFrame(loop, pending.conn_id, it->second);
    }
  }

  void DeliverWriterCompletions(EventLoop& loop) {
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      std::deque<WriterDone>& mine =
          writer_done[static_cast<size_t>(loop.index)];
      if (mine.empty()) return;  // steady-state ticks: no queue churn
      loop.done_scratch.clear();
      for (WriterDone& done : mine) {
        loop.done_scratch.push_back(std::move(done));
      }
      mine.clear();
    }
    for (WriterDone& completion : loop.done_scratch) {
      auto it = loop.conns.find(completion.conn_id);
      if (it == loop.conns.end()) continue;
      if (completion.result.code == WireCode::kOk) {
        if (completion.op == WriterOp::kSellerDelta) {
          WireDeltaResult result;
          result.code = completion.result.code;
          result.message = completion.result.message;
          result.generation = completion.result.version;
          AppendApplySellerDeltaReplyFrame(completion.request_id, result,
                                           AcquireFrame(loop, it->second));
        } else {
          AppendAppendReplyFrame(completion.request_id, completion.result,
                                 AcquireFrame(loop, it->second));
        }
      } else {
        AppendErrorReplyFrame(completion.request_id, completion.result.code,
                              completion.result.message,
                              AcquireFrame(loop, it->second));
      }
      CommitFrame(loop, completion.conn_id, it->second);
    }
    loop.done_scratch.clear();
  }

  /// Claims the next encode-arena slot on `conn` (cleared, capacity
  /// retained — a pool hit when it served before). The caller appends
  /// exactly one frame and then calls CommitFrame.
  std::vector<uint8_t>* AcquireFrame(EventLoop& loop, Connection& conn) {
    if (conn.frame_head + conn.frame_count == conn.frames.size()) {
      if (conn.frame_head > 0) {
        // Compact the active window to the front: a rotate of vector
        // headers, so freed slots (and their capacity) cycle to the back
        // for reuse without any heap traffic.
        std::rotate(conn.frames.begin(),
                    conn.frames.begin() +
                        static_cast<ptrdiff_t>(conn.frame_head),
                    conn.frames.end());
        conn.frame_head = 0;
      }
      if (conn.frame_count == conn.frames.size()) {
        conn.frames.emplace_back();  // high-water growth, then pooled
      }
    }
    std::vector<uint8_t>& slot = conn.frames[conn.frame_head + conn.frame_count];
    ++conn.frame_count;
    if (slot.capacity() > 0) {
      loop.pool_hits.fetch_add(1, std::memory_order_relaxed);
    }
    loop.acquired_cap = slot.capacity();
    slot.clear();
    return &slot;
  }

  /// Books the just-encoded frame's capacity growth against pool_bytes
  /// and flushes. Returns false if the connection is gone.
  bool CommitFrame(EventLoop& loop, uint64_t id, Connection& conn) {
    const std::vector<uint8_t>& slot =
        conn.frames[conn.frame_head + conn.frame_count - 1];
    if (slot.capacity() > loop.acquired_cap) {
      loop.pool_bytes.fetch_add(slot.capacity() - loop.acquired_cap,
                                std::memory_order_relaxed);
    }
    FlushWrites(loop, id, conn);
    return loop.conns.find(id) != loop.conns.end();
  }

  /// Pops the fully-sent front frame, returning its buffer to the pool
  /// (or freeing it, if one oversized reply stretched it past the cap).
  void ReleaseFrontFrame(EventLoop& loop, Connection& conn) {
    std::vector<uint8_t>& slot = conn.frames[conn.frame_head];
    if (slot.capacity() > kFrameSlotCapBytes) {
      loop.pool_bytes.fetch_sub(slot.capacity(), std::memory_order_relaxed);
      std::vector<uint8_t>().swap(slot);
    }
    ++conn.frame_head;
    --conn.frame_count;
    conn.out_offset = 0;
    if (conn.frame_count == 0) conn.frame_head = 0;
  }

  /// Flushes as much of the connection's queued frames as the socket
  /// accepts, coalescing up to kMaxIovPerFlush frames per vectored
  /// write. Partial writes advance out_offset across iovec boundaries;
  /// EPOLLOUT is armed iff bytes remain.
  void FlushWrites(EventLoop& loop, uint64_t id, Connection& conn) {
    while (conn.frame_count > 0) {
      iovec iov[kMaxIovPerFlush];
      int iovcnt = 0;
      size_t skip = conn.out_offset;
      for (size_t k = 0; k < conn.frame_count && iovcnt < kMaxIovPerFlush;
           ++k) {
        std::vector<uint8_t>& frame = conn.frames[conn.frame_head + k];
        iov[iovcnt].iov_base = frame.data() + skip;
        iov[iovcnt].iov_len = frame.size() - skip;
        skip = 0;
        ++iovcnt;
      }
      // sendmsg == writev + MSG_NOSIGNAL: a peer that resets mid-write
      // must surface as EPIPE (we close the connection) — not SIGPIPE
      // the whole process.
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<size_t>(iovcnt);
      // Count the submission BEFORE the syscall: the kernel can deliver
      // these bytes to the peer the instant sendmsg runs, and a client
      // that sees its reply may immediately ask another loop for Stats —
      // the counters must already cover every frame the reply's flush
      // submitted. (EINTR retries and EAGAIN therefore over-count
      // slightly; both gauges are monotone lower-bound checks.)
      loop.writev_calls.fetch_add(1, std::memory_order_relaxed);
      loop.writev_frames.fetch_add(static_cast<uint64_t>(iovcnt),
                                   std::memory_order_relaxed);
      ssize_t n = sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        CloseConn(loop, id);
        return;
      }
      size_t advanced = static_cast<size_t>(n);
      while (advanced > 0) {
        const std::vector<uint8_t>& front = conn.frames[conn.frame_head];
        const size_t remain = front.size() - conn.out_offset;
        if (advanced < remain) {
          conn.out_offset += advanced;
          break;
        }
        advanced -= remain;
        ReleaseFrontFrame(loop, conn);
      }
    }
    bool want_out = conn.frame_count > 0;
    if (want_out != conn.epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
      ev.data.u64 = id;
      epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
      conn.epollout_armed = want_out;
    }
  }
};

RpcServer::RpcServer(ShardedPricingEngine* engine, db::Database* db,
                     RpcServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->engine = engine;
  impl_->db = db;
  impl_->options = std::move(options);
  if (impl_->options.max_frame_bytes > kMaxFrameBytes) {
    impl_->options.max_frame_bytes = kMaxFrameBytes;
  }
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() { return impl_->Start(); }

void RpcServer::Stop() { impl_->Stop(); }

uint16_t RpcServer::port() const { return impl_->bound_port; }

RpcServerStats RpcServer::stats() const {
  RpcServerStats out;
  out.loops = static_cast<uint64_t>(impl_->loops.size());
  for (const auto& loop : impl_->loops) {
    out.connections_accepted +=
        loop->connections_accepted.load(std::memory_order_relaxed);
    out.connections_closed +=
        loop->connections_closed.load(std::memory_order_relaxed);
    out.frames_received +=
        loop->frames_received.load(std::memory_order_relaxed);
    out.quote_requests += loop->quote_requests.load(std::memory_order_relaxed);
    out.quote_batch_requests +=
        loop->quote_batch_requests.load(std::memory_order_relaxed);
    out.purchase_requests +=
        loop->purchase_requests.load(std::memory_order_relaxed);
    out.append_requests +=
        loop->append_requests.load(std::memory_order_relaxed);
    out.seller_delta_requests +=
        loop->seller_delta_requests.load(std::memory_order_relaxed);
    out.stats_requests += loop->stats_requests.load(std::memory_order_relaxed);
    out.quote_ticks += loop->quote_ticks.load(std::memory_order_relaxed);
    out.batched_quotes += loop->batched_quotes.load(std::memory_order_relaxed);
    out.protocol_errors +=
        loop->protocol_errors.load(std::memory_order_relaxed);
    out.writev_calls += loop->writev_calls.load(std::memory_order_relaxed);
    out.writev_frames += loop->writev_frames.load(std::memory_order_relaxed);
    out.pool_hits += loop->pool_hits.load(std::memory_order_relaxed);
    out.pool_bytes += loop->pool_bytes.load(std::memory_order_relaxed);
  }
  out.writer_enqueued =
      impl_->writer_enqueued.load(std::memory_order_relaxed);
  out.writer_rejected =
      impl_->writer_rejected.load(std::memory_order_relaxed);
  return out;
}

uint64_t RpcServer::alloc_probe_total() const {
  uint64_t total = 0;
  for (const auto& loop : impl_->loops) {
    total += loop->alloc_probe_last.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace qp::serve::rpc
