#include "serve/rpc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "db/parser.h"
#include "serve/rpc/wire.h"

namespace qp::serve::rpc {
namespace {

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

struct RpcServer::Impl {
  // --- connection state (loop-thread-private) ---------------------------
  struct Connection {
    int fd = -1;
    std::vector<uint8_t> in;            // partial-frame receive buffer
    std::deque<std::vector<uint8_t>> out;  // pending response frames
    size_t out_offset = 0;              // sent bytes of out.front()
    bool epollout_armed = false;
  };

  /// One quote-shaped request captured during a tick, answered by the
  /// tick's single engine QuoteBatch call.
  struct PendingQuote {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    bool is_batch = false;
    std::vector<std::vector<uint32_t>> bundles;
  };

  // --- writer queue (shared: loop thread -> writer thread) --------------
  enum class WriterOp : uint8_t { kAppend, kSellerDelta };
  struct WriterJob {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    WriterOp op = WriterOp::kAppend;
    std::vector<WireBuyer> buyers;       // op == kAppend
    market::CellDelta delta;             // op == kSellerDelta
  };
  struct WriterDone {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    WriterOp op = WriterOp::kAppend;
    /// For seller deltas `version` carries the catalog generation.
    WireAppendResult result;
  };

  ShardedPricingEngine* engine;
  db::Database* db;
  RpcServerOptions options;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  uint16_t bound_port = 0;
  bool started = false;

  std::thread loop_thread;
  std::thread writer_thread;
  std::atomic<bool> stopping{false};
  std::atomic<bool> writer_exited{false};
  /// Restarted by Stop() before `stopping` becomes visible; both threads
  /// measure their drain budget against it.
  Stopwatch drain_watch;

  std::unordered_map<uint64_t, Connection> conns;
  uint64_t next_conn_id = 2;  // 0 = listen socket, 1 = wake eventfd

  std::mutex writer_mutex;
  std::condition_variable writer_cv;
  std::deque<WriterJob> writer_queue;
  std::deque<WriterDone> writer_done;  // guarded by writer_mutex too

  // Counters: loop-thread writes dominate, but stats() reads from any
  // thread and the writer thread bumps writer-side ones, so all atomic.
  std::atomic<uint64_t> connections_accepted{0}, connections_closed{0},
      frames_received{0}, quote_requests{0}, quote_batch_requests{0},
      purchase_requests{0}, append_requests{0}, seller_delta_requests{0},
      stats_requests{0},
      quote_ticks{0}, batched_quotes{0}, writer_enqueued{0},
      writer_rejected{0}, protocol_errors{0};

  ~Impl() { CloseFds(); }

  void CloseFds() {
    if (listen_fd >= 0) close(listen_fd);
    if (epoll_fd >= 0) close(epoll_fd);
    if (wake_fd >= 0) close(wake_fd);
    listen_fd = epoll_fd = wake_fd = -1;
  }

  Status Start() {
    if (started) return Status::FailedPrecondition("RpcServer already started");
    listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return Status::Internal("socket() failed");
    int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
      CloseFds();
      return Status::InvalidArgument("bad bind address: " +
                                     options.bind_address);
    }
    if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      CloseFds();
      return Status::Internal("bind() failed: " +
                              std::string(std::strerror(errno)));
    }
    if (listen(listen_fd, options.listen_backlog) != 0) {
      CloseFds();
      return Status::Internal("listen() failed");
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);

    epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd < 0 || wake_fd < 0) {
      CloseFds();
      return Status::Internal("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.u64 = 1;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev);

    started = true;
    loop_thread = std::thread([this] { LoopThread(); });
    writer_thread = std::thread([this] {
      WriterThread();
      writer_exited.store(true);
      Wake();  // the draining loop polls writer_exited each tick
    });
    return Status::OK();
  }

  void Stop() {
    if (!started || stopping.load()) {
      // Not started or a second Stop(): just make sure threads are gone.
      if (writer_thread.joinable()) writer_thread.join();
      if (loop_thread.joinable()) loop_thread.join();
      return;
    }
    drain_watch.Restart();
    stopping.store(true);
    // Both threads drain concurrently: the writer keeps executing queued
    // appends, the loop keeps flushing replies (and serving already-read
    // requests) until DrainComplete() or the budget runs out.
    writer_cv.notify_all();
    Wake();
    writer_thread.join();
    Wake();
    loop_thread.join();
    CloseFds();
  }

  bool DrainExpired() {
    return options.drain_timeout_ms <= 0 ||
           drain_watch.ElapsedMillis() >=
               static_cast<double>(options.drain_timeout_ms);
  }

  /// Loop-thread only: true once the writer is gone, its completions are
  /// delivered, and every connection's out-queue hit the wire.
  bool DrainComplete() {
    if (!writer_exited.load()) return false;
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      if (!writer_done.empty()) return false;
    }
    for (const auto& entry : conns) {
      if (!entry.second.out.empty()) return false;
    }
    return true;
  }

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd, &one, sizeof(one));
  }

  // --- writer thread ----------------------------------------------------
  void WriterThread() {
    for (;;) {
      WriterJob job;
      {
        std::unique_lock<std::mutex> lock(writer_mutex);
        writer_cv.wait(lock, [this] {
          return stopping.load() || !writer_queue.empty();
        });
        if (writer_queue.empty()) return;  // stopping, queue drained
        if (stopping.load() && DrainExpired()) {
          // Drain budget exhausted: fail everything still queued; the
          // loop's final tick delivers the replies it can. (Within the
          // budget, queued appends keep EXECUTING — each was already
          // admitted, so the client was promised a real answer.)
          while (!writer_queue.empty()) {
            WriterJob dropped = std::move(writer_queue.front());
            writer_queue.pop_front();
            writer_done.push_back(
                {dropped.conn_id, dropped.request_id, dropped.op,
                 {WireCode::kShuttingDown, "server stopping", 0}});
          }
          Wake();
          return;
        }
        job = std::move(writer_queue.front());
        writer_queue.pop_front();
      }
      WriterDone done{job.conn_id, job.request_id, job.op,
                      job.op == WriterOp::kAppend ? ExecuteAppend(job)
                                                  : ExecuteSellerDelta(job)};
      {
        std::lock_guard<std::mutex> lock(writer_mutex);
        writer_done.push_back(std::move(done));
      }
      Wake();
    }
  }

  WireAppendResult ExecuteAppend(const WriterJob& job) {
    std::vector<db::BoundQuery> queries;
    core::Valuations valuations;
    queries.reserve(job.buyers.size());
    for (const WireBuyer& buyer : job.buyers) {
      auto parsed = db::ParseQuery(buyer.sql, *db);
      if (!parsed.ok()) {
        // All-or-nothing: a bad buyer fails the whole request before the
        // engine sees any of it.
        return {WireCode::kBadRequest,
                "AppendBuyers: " + parsed.status().ToString(), 0};
      }
      queries.push_back(std::move(*parsed));
      valuations.push_back(buyer.valuation);
    }
    Status status = engine->AppendBuyers(queries, valuations);
    if (!status.ok()) return {WireCode::kInternal, status.ToString(), 0};
    return {WireCode::kOk, "", engine->snapshot().version()};
  }

  WireAppendResult ExecuteSellerDelta(const WriterJob& job) {
    // Bounds-check against the live schema before the engine sees it: a
    // hostile delta must fail as kBadRequest, not corrupt the catalog.
    const market::CellDelta& d = job.delta;
    if (d.table < 0 || d.table >= db->num_tables()) {
      return {WireCode::kBadRequest, "ApplySellerDelta: table out of range", 0};
    }
    const db::Table& table = db->table(d.table);
    if (d.row < 0 || d.row >= table.num_rows() || d.column < 0 ||
        d.column >= table.schema().num_columns()) {
      return {WireCode::kBadRequest, "ApplySellerDelta: cell out of range", 0};
    }
    Status status = engine->ApplySellerDelta(*db, d);
    if (!status.ok()) return {WireCode::kInternal, status.ToString(), 0};
    return {WireCode::kOk, "", engine->catalog().head_generation()};
  }

  // --- event loop -------------------------------------------------------
  void LoopThread() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    std::vector<PendingQuote> tick_quotes;
    bool draining = false;
    for (;;) {
      // While draining, tick at ~10ms so drain progress (writer exit,
      // blocked out-queues opening up) is noticed without socket events.
      int n = epoll_wait(epoll_fd, events, kMaxEvents, draining ? 10 : -1);
      if (n < 0 && errno != EINTR) break;
      if (!draining && stopping.load()) {
        draining = true;
        // Connections that finished their handshake before Stop() sit in
        // the listen backlog (the peer's connect() already succeeded and
        // it may have requests in flight). Admit them so they drain to
        // real replies below; closing the listener with them still queued
        // would RST the peer instead.
        AcceptAll();
        epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      }
      tick_quotes.clear();
      for (int i = 0; i < n; ++i) {
        uint64_t id = events[i].data.u64;
        uint32_t mask = events[i].events;
        if (id == 0) {
          if (!draining) AcceptAll();
        } else if (id == 1) {
          uint64_t drained;
          while (read(wake_fd, &drained, sizeof(drained)) > 0) {
          }
        } else {
          auto it = conns.find(id);
          if (it == conns.end()) continue;
          if (mask & (EPOLLHUP | EPOLLERR)) {
            CloseConn(id);
            continue;
          }
          if (mask & EPOLLIN) {
            if (!ReadConn(id, it->second, &tick_quotes)) continue;
          }
          if (mask & EPOLLOUT) {
            auto again = conns.find(id);
            if (again != conns.end()) FlushWrites(id, again->second);
          }
        }
      }
      DeliverWriterCompletions();
      ServeQuoteTick(tick_quotes);
      // Only a zero-event (pure timeout) tick can end the drain early:
      // level-triggered epoll reports any unread buffered request, and
      // close()-ing a socket with unread inbound data sends RST, which
      // would discard replies the peer has not consumed yet.
      if (draining && ((n == 0 && DrainComplete()) || DrainExpired())) break;
    }
    // Final flush: fail any append the writer never reached (possible
    // only when the drain deadline expired), deliver whatever responses
    // are already queued without blocking, then drop the connections.
    // Pops race-free with a still-draining writer: both sides pop under
    // writer_mutex, so each job is answered exactly once.
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      while (!writer_queue.empty()) {
        WriterJob dropped = std::move(writer_queue.front());
        writer_queue.pop_front();
        writer_done.push_back({dropped.conn_id, dropped.request_id, dropped.op,
                               {WireCode::kShuttingDown, "server stopping", 0}});
      }
    }
    DeliverWriterCompletions();
    std::vector<uint64_t> ids;
    ids.reserve(conns.size());
    for (auto& [id, conn] : conns) {
      FlushWrites(id, conn);
      ids.push_back(id);
    }
    for (uint64_t id : ids) CloseConn(id);
  }

  void AcceptAll() {
    for (;;) {
      int fd = accept4(listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      SetNoDelay(fd);
      uint64_t id = next_conn_id++;
      Connection& conn = conns[id];
      conn.fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void CloseConn(uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    close(it->second.fd);
    conns.erase(it);
    connections_closed.fetch_add(1, std::memory_order_relaxed);
  }

  /// Reads everything available, extracting and dispatching complete
  /// frames. Returns false if the connection was closed.
  bool ReadConn(uint64_t id, Connection& conn,
                std::vector<PendingQuote>* tick_quotes) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.in.insert(conn.in.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Peer closed (possibly mid-frame) or hard error: any buffered
      // partial frame dies with the connection.
      CloseConn(id);
      return false;
    }
    size_t pos = 0;
    while (pos < conn.in.size()) {
      Frame frame;
      size_t consumed = 0;
      ExtractResult result =
          ExtractFrame(conn.in.data() + pos, conn.in.size() - pos, &consumed,
                       &frame, options.max_frame_bytes);
      if (result == ExtractResult::kNeedMore) break;
      if (result == ExtractResult::kError) {
        // A bad length prefix desynchronizes the stream; nothing after
        // it can be trusted, so drop the connection.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        CloseConn(id);
        return false;
      }
      frames_received.fetch_add(1, std::memory_order_relaxed);
      if (!Dispatch(id, frame, tick_quotes)) {
        // Dispatch closed the connection.
        return false;
      }
      pos += consumed;
      // Dispatch may have queued writes, but never touches conn.in.
    }
    if (pos > 0) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<ptrdiff_t>(pos));
    }
    return true;
  }

  /// Handles one decoded frame. Returns false if the connection was
  /// closed during dispatch.
  bool Dispatch(uint64_t id, const Frame& frame,
                std::vector<PendingQuote>* tick_quotes) {
    switch (frame.type) {
      case MsgType::kQuote: {
        quote_requests.fetch_add(1, std::memory_order_relaxed);
        PendingQuote pending;
        pending.conn_id = id;
        pending.request_id = frame.request_id;
        pending.is_batch = false;
        std::vector<uint32_t> bundle;
        if (!DecodeQuoteRequest(frame.body, &bundle)) {
          return BadRequest(id, frame.request_id, "malformed Quote body");
        }
        pending.bundles.push_back(std::move(bundle));
        tick_quotes->push_back(std::move(pending));
        return true;
      }
      case MsgType::kQuoteBatch: {
        quote_batch_requests.fetch_add(1, std::memory_order_relaxed);
        PendingQuote pending;
        pending.conn_id = id;
        pending.request_id = frame.request_id;
        pending.is_batch = true;
        if (!DecodeQuoteBatchRequest(frame.body, &pending.bundles)) {
          return BadRequest(id, frame.request_id, "malformed QuoteBatch body");
        }
        tick_quotes->push_back(std::move(pending));
        return true;
      }
      case MsgType::kPurchase: {
        purchase_requests.fetch_add(1, std::memory_order_relaxed);
        std::string sql;
        double valuation = 0.0;
        if (!DecodePurchaseRequest(frame.body, &sql, &valuation)) {
          return BadRequest(id, frame.request_id, "malformed Purchase body");
        }
        auto parsed = db::ParseQuery(sql, *db);
        if (!parsed.ok()) {
          return BadRequest(id, frame.request_id,
                            "Purchase: " + parsed.status().ToString());
        }
        // Reader-side end to end (overlay probe + snapshot pin + atomic
        // sale counters): never blocks behind the engine's writer.
        PurchaseOutcome outcome = engine->Purchase(*parsed, valuation);
        if (!outcome.status.ok()) {
          // Bundle touches a shard still warming after restore: the sale
          // was NOT attempted — the client may retry.
          return QueueWrite(
              id, EncodeErrorReply(frame.request_id, WireCode::kUnavailable,
                                   outcome.status.message()));
        }
        WirePurchase reply;
        reply.accepted = outcome.accepted;
        reply.valuation = outcome.valuation;
        reply.quote = std::move(outcome.quote);
        reply.bundle = std::move(outcome.bundle);
        return QueueWrite(id, EncodePurchaseReply(frame.request_id, reply));
      }
      case MsgType::kAppendBuyers: {
        append_requests.fetch_add(1, std::memory_order_relaxed);
        if (stopping.load()) {
          // Draining: only appends admitted BEFORE Stop() get executed;
          // new ones are refused so the writer can actually finish.
          return QueueWrite(
              id, EncodeErrorReply(frame.request_id, WireCode::kShuttingDown,
                                   "server stopping"));
        }
        WriterJob job;
        job.conn_id = id;
        job.request_id = frame.request_id;
        if (!DecodeAppendRequest(frame.body, &job.buyers)) {
          return BadRequest(id, frame.request_id,
                            "malformed AppendBuyers body");
        }
        {
          std::lock_guard<std::mutex> lock(writer_mutex);
          if (writer_queue.size() >= options.writer_queue_depth) {
            writer_rejected.fetch_add(1, std::memory_order_relaxed);
            return QueueWrite(
                id, EncodeErrorReply(frame.request_id, WireCode::kBackpressure,
                                     "writer queue full; retry later"));
          }
          writer_queue.push_back(std::move(job));
          writer_enqueued.fetch_add(1, std::memory_order_relaxed);
        }
        writer_cv.notify_one();
        return true;
      }
      case MsgType::kApplySellerDelta: {
        seller_delta_requests.fetch_add(1, std::memory_order_relaxed);
        if (stopping.load()) {
          // Same drain contract as appends: only deltas admitted BEFORE
          // Stop() execute; new ones are refused, NOT applied.
          return QueueWrite(
              id, EncodeErrorReply(frame.request_id, WireCode::kShuttingDown,
                                   "server stopping"));
        }
        WriterJob job;
        job.conn_id = id;
        job.request_id = frame.request_id;
        job.op = WriterOp::kSellerDelta;
        if (!DecodeApplySellerDeltaRequest(frame.body, &job.delta)) {
          return BadRequest(id, frame.request_id,
                            "malformed ApplySellerDelta body");
        }
        {
          std::lock_guard<std::mutex> lock(writer_mutex);
          if (writer_queue.size() >= options.writer_queue_depth) {
            writer_rejected.fetch_add(1, std::memory_order_relaxed);
            return QueueWrite(
                id, EncodeErrorReply(frame.request_id, WireCode::kBackpressure,
                                     "writer queue full; retry later"));
          }
          writer_queue.push_back(std::move(job));
          writer_enqueued.fetch_add(1, std::memory_order_relaxed);
        }
        writer_cv.notify_one();
        return true;
      }
      case MsgType::kStats: {
        stats_requests.fetch_add(1, std::memory_order_relaxed);
        return QueueWrite(id, EncodeStatsReply(frame.request_id, BuildStats()));
      }
      default:
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        return QueueWrite(
            id, EncodeErrorReply(frame.request_id, WireCode::kBadRequest,
                                 "unknown message type"));
    }
  }

  bool BadRequest(uint64_t id, uint64_t request_id, const std::string& msg) {
    protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return QueueWrite(id,
                      EncodeErrorReply(request_id, WireCode::kBadRequest, msg));
  }

  /// Everything here is lock-free against the engine's writer: merged
  /// view for versions/edges, reader_stats() for the counters.
  WireStats BuildStats() {
    WireStats out;
    MergedBookView view = engine->snapshot();
    out.num_shards = static_cast<uint32_t>(view.num_shards());
    out.shard_versions = view.version_vector();
    out.version = view.version();
    for (int s = 0; s < view.num_shards(); ++s) {
      out.num_edges += static_cast<uint64_t>(view.shard(s).num_edges());
    }
    ShardedPricingEngine::ReaderStats reader = engine->reader_stats();
    out.quotes_served = reader.quotes_served;
    out.purchases = reader.purchases;
    out.purchases_accepted = reader.purchases_accepted;
    out.sale_revenue = reader.sale_revenue;
    out.prepared_hits = reader.prepared.hits;
    out.prepared_misses = reader.prepared.misses;
    out.prepared_evictions = reader.prepared.evictions;
    out.prepared_entries = reader.prepared.entries;
    out.quote_ticks = quote_ticks.load(std::memory_order_relaxed);
    out.batched_quotes = batched_quotes.load(std::memory_order_relaxed);
    out.writer_rejected = writer_rejected.load(std::memory_order_relaxed);
    out.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    out.connections_accepted =
        connections_accepted.load(std::memory_order_relaxed);
    out.catalog_generation = engine->catalog().head_generation();
    out.generations_published = reader.catalog.generations_published;
    out.folds = reader.catalog.folds;
    out.fold_retries = reader.catalog.fold_retries;
    out.deltas_pending = reader.catalog.deltas_pending;
    out.deltas_folded = reader.catalog.deltas_folded;
    out.fold_nanos = reader.catalog.fold_nanos;
    out.staleness_samples = reader.catalog.staleness_samples;
    out.staleness_sum = reader.catalog.staleness_sum;
    out.staleness_max = reader.catalog.staleness_max;
    return out;
  }

  /// The auto-batching heart: every quote-shaped request the tick
  /// decoded — across all connections — prices through ONE QuoteBatch
  /// call (one snapshot pin per shard for the whole tick), then the
  /// results fan back out to their requests in arrival order.
  void ServeQuoteTick(const std::vector<PendingQuote>& tick_quotes) {
    if (tick_quotes.empty()) return;
    std::vector<std::vector<uint32_t>> flat;
    for (const PendingQuote& pending : tick_quotes) {
      for (const std::vector<uint32_t>& bundle : pending.bundles) {
        flat.push_back(bundle);
      }
    }
    // TryQuoteBatch degrades gracefully during a restore: bundles that
    // touch a still-warming shard come back Unavailable instead of a
    // wrongly-low cold price. Identical to QuoteBatch once all shards
    // are warm (one relaxed load on that path).
    std::vector<Result<Quote>> quotes = engine->TryQuoteBatch(flat);
    quote_ticks.fetch_add(1, std::memory_order_relaxed);
    batched_quotes.fetch_add(flat.size(), std::memory_order_relaxed);
    size_t next = 0;
    for (const PendingQuote& pending : tick_quotes) {
      size_t count = pending.bundles.size();
      const Result<Quote>* first_bad = nullptr;
      for (size_t k = 0; k < count; ++k) {
        if (!quotes[next + k].ok()) {
          first_bad = &quotes[next + k];
          break;
        }
      }
      if (first_bad != nullptr) {
        // All-or-nothing per request: a batch whose generation cannot be
        // uniform (some bundles refused) is refused whole.
        QueueWrite(pending.conn_id,
                   EncodeErrorReply(pending.request_id, WireCode::kUnavailable,
                                    first_bad->status().message()));
      } else if (pending.is_batch) {
        std::vector<Quote> slice;
        slice.reserve(count);
        for (size_t k = 0; k < count; ++k) slice.push_back(*quotes[next + k]);
        QueueWrite(pending.conn_id,
                   EncodeQuoteBatchReply(pending.request_id, slice));
      } else {
        QueueWrite(pending.conn_id,
                   EncodeQuoteReply(pending.request_id, *quotes[next]));
      }
      next += count;
    }
  }

  void DeliverWriterCompletions() {
    std::deque<WriterDone> done;
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      done.swap(writer_done);
    }
    for (WriterDone& completion : done) {
      if (completion.result.code == WireCode::kOk) {
        if (completion.op == WriterOp::kSellerDelta) {
          WireDeltaResult result;
          result.code = completion.result.code;
          result.message = completion.result.message;
          result.generation = completion.result.version;
          QueueWrite(completion.conn_id,
                     EncodeApplySellerDeltaReply(completion.request_id, result));
          continue;
        }
        QueueWrite(completion.conn_id,
                   EncodeAppendReply(completion.request_id, completion.result));
      } else {
        QueueWrite(completion.conn_id,
                   EncodeErrorReply(completion.request_id,
                                    completion.result.code,
                                    completion.result.message));
      }
    }
  }

  /// Queues a response frame and flushes as much as the socket accepts.
  /// Returns false if the connection is gone (response dropped).
  bool QueueWrite(uint64_t id, std::vector<uint8_t> frame) {
    auto it = conns.find(id);
    if (it == conns.end()) return false;
    it->second.out.push_back(std::move(frame));
    FlushWrites(id, it->second);
    return conns.find(id) != conns.end();
  }

  void FlushWrites(uint64_t id, Connection& conn) {
    while (!conn.out.empty()) {
      const std::vector<uint8_t>& front = conn.out.front();
      // MSG_NOSIGNAL: a peer that resets mid-write must surface as EPIPE
      // (we close the connection) — not SIGPIPE the whole process.
      ssize_t n = send(conn.fd, front.data() + conn.out_offset,
                       front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        CloseConn(id);
        return;
      }
      conn.out_offset += static_cast<size_t>(n);
      if (conn.out_offset == front.size()) {
        conn.out.pop_front();
        conn.out_offset = 0;
      }
    }
    bool want_out = !conn.out.empty();
    if (want_out != conn.epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
      ev.data.u64 = id;
      epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
      conn.epollout_armed = want_out;
    }
  }
};

RpcServer::RpcServer(ShardedPricingEngine* engine, db::Database* db,
                     RpcServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->engine = engine;
  impl_->db = db;
  impl_->options = std::move(options);
  if (impl_->options.max_frame_bytes > kMaxFrameBytes) {
    impl_->options.max_frame_bytes = kMaxFrameBytes;
  }
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() { return impl_->Start(); }

void RpcServer::Stop() { impl_->Stop(); }

uint16_t RpcServer::port() const { return impl_->bound_port; }

RpcServerStats RpcServer::stats() const {
  RpcServerStats out;
  out.connections_accepted =
      impl_->connections_accepted.load(std::memory_order_relaxed);
  out.connections_closed =
      impl_->connections_closed.load(std::memory_order_relaxed);
  out.frames_received = impl_->frames_received.load(std::memory_order_relaxed);
  out.quote_requests = impl_->quote_requests.load(std::memory_order_relaxed);
  out.quote_batch_requests =
      impl_->quote_batch_requests.load(std::memory_order_relaxed);
  out.purchase_requests =
      impl_->purchase_requests.load(std::memory_order_relaxed);
  out.append_requests = impl_->append_requests.load(std::memory_order_relaxed);
  out.seller_delta_requests =
      impl_->seller_delta_requests.load(std::memory_order_relaxed);
  out.stats_requests = impl_->stats_requests.load(std::memory_order_relaxed);
  out.quote_ticks = impl_->quote_ticks.load(std::memory_order_relaxed);
  out.batched_quotes = impl_->batched_quotes.load(std::memory_order_relaxed);
  out.writer_enqueued = impl_->writer_enqueued.load(std::memory_order_relaxed);
  out.writer_rejected = impl_->writer_rejected.load(std::memory_order_relaxed);
  out.protocol_errors = impl_->protocol_errors.load(std::memory_order_relaxed);
  return out;
}

}  // namespace qp::serve::rpc
