// Async multi-reactor RPC serving front-end over ShardedPricingEngine.
//
// RpcServerOptions::num_loops epoll event-loop threads each own a
// DISJOINT set of connections: non-blocking accept/read/write, length-
// prefixed frames (serve/rpc/wire.h) — the logcabin OpaqueServer shape,
// without the monitor locking because all connection state is loop-
// thread-private. Connections shard across loops at accept time: every
// loop gets its own SO_REUSEPORT listener where available (the kernel
// balances new connections), falling back to one listener on loop 0
// with round-robin handoff of accepted fds (also forced by
// force_accept_handoff, which tests use for a deterministic spread).
// The design splits the engine's reader/writer seam across threads:
//
//  * Read requests (Quote, QuoteBatch) arriving within one event-loop
//    tick auto-batch PER LOOP: the loop collects every decoded bundle
//    while draining the tick's readable sockets, then prices them
//    through ONE ShardedPricingEngine batch call — one snapshot/epoch
//    pin per loop-tick across that loop's connections (exactly what the
//    batch API amortizes), and every quote in the tick carries the same
//    merged generation. Wire quotes are bit-identical to the in-process
//    engine's and invariant to num_loops. Purchase and Stats are served
//    inline on the loop thread; both are lock-free against the engine's
//    writer, so a slow append never stalls the read path.
//  * Steady-state quote serving does ZERO per-frame heap allocations on
//    a loop thread: requests decode into reused per-loop bundle slots,
//    the engine prices through caller-owned scratch
//    (ShardedPricingEngine::TryQuoteBatchInto), replies encode in place
//    into pooled per-connection frame buffers (capped high-water marks,
//    see pool_hits/pool_bytes), and each connection's queued frames
//    flush with one bounded-iovec vectored write (writev_calls /
//    writev_frames count the coalescing). The alloc_probe hook lets
//    benches assert the zero-allocation property from outside.
//  * Writer ops (AppendBuyers, ApplySellerDelta) enter a bounded
//    admission queue consumed by a dedicated writer thread (the engine
//    serializes writers anyway, so one thread loses nothing). A full
//    queue rejects the request immediately with WireCode::kBackpressure
//    — the request was NOT applied, and the client owns the retry.
//    Completions post back to the loop through an eventfd and are
//    answered in completion order. Seller deltas commit into the
//    engine's versioned catalog (db::VersionedDatabase), so concurrent
//    quotes and purchases keep serving lock-free while one lands.
//
// Responses may therefore interleave arbitrarily with request order on
// one connection; clients match on request_id (see wire.h).
//
// Shutdown (Stop(), also run by the destructor) drains gracefully
// within drain_timeout_ms, every loop independently: each loop
// immediately stops accepting new connections but keeps ticking; the
// writer thread keeps EXECUTING its queued appends (each one already
// acknowledged into the admission queue) until the queue empties or the
// deadline passes — only then are leftovers failed with kShuttingDown.
// A loop exits once the writer is done, its completions are delivered,
// and every one of its connections' out-queues flushed (or the deadline
// passes), then closes its connections.
#ifndef QP_SERVE_RPC_SERVER_H_
#define QP_SERVE_RPC_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "db/database.h"
#include "serve/sharded_engine.h"

namespace qp::serve::rpc {

struct RpcServerOptions {
  /// IPv4 address to bind; loopback by default.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;
  int listen_backlog = 128;
  /// Frames with a larger payload are a protocol error (connection
  /// closed). Bounded by wire::kMaxFrameBytes.
  uint32_t max_frame_bytes = 1u << 20;
  /// Event-loop (reactor) threads. Each owns a disjoint connection set
  /// with its own epoll instance, tick auto-batcher and write flusher;
  /// the engine itself is shared. Clamped to >= 1.
  int num_loops = 1;
  /// Test hook: skip the per-loop SO_REUSEPORT listeners and run the
  /// fallback accept path even where SO_REUSEPORT works — one listener
  /// on loop 0, accepted connections handed round-robin across loops
  /// (deterministic spread; kernel REUSEPORT balancing is hash-based).
  bool force_accept_handoff = false;
  /// Admission-control depth for writer ops (AppendBuyers): requests
  /// beyond this many queued get an immediate kBackpressure reply. The
  /// queue (like the engine's writer mutex it feeds) is shared across
  /// loops, so the depth bounds the whole server exactly as it did the
  /// single-loop server.
  size_t writer_queue_depth = 16;
  /// Bench/test hook: when set, every loop thread samples this at the
  /// end of each tick (typically a thread_local allocation counter);
  /// alloc_probe_total() sums the latest samples. Lets harnesses assert
  /// the steady-state quote path performs zero heap allocations.
  uint64_t (*alloc_probe)() = nullptr;
  /// Graceful-drain budget for Stop(): queued appends keep executing
  /// and responses keep flushing until done or this many ms pass.
  /// <= 0 skips the drain (queued appends fail with kShuttingDown).
  int drain_timeout_ms = 1000;
};

struct RpcServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t quote_requests = 0;
  uint64_t quote_batch_requests = 0;
  uint64_t purchase_requests = 0;
  uint64_t append_requests = 0;
  uint64_t seller_delta_requests = 0;
  uint64_t stats_requests = 0;
  /// Ticks that served at least one quote request, and the bundles they
  /// coalesced into single engine QuoteBatch calls. batched_quotes /
  /// quote_ticks is the realized auto-batching factor.
  uint64_t quote_ticks = 0;
  uint64_t batched_quotes = 0;
  uint64_t writer_enqueued = 0;
  /// Writer ops rejected with kBackpressure (queue full).
  uint64_t writer_rejected = 0;
  uint64_t protocol_errors = 0;
  /// Event-loop threads serving connections (RpcServerOptions::num_loops
  /// after clamping).
  uint64_t loops = 0;
  /// Vectored flushes issued and the response frames they coalesced;
  /// writev_frames / writev_calls is the realized coalescing factor.
  uint64_t writev_calls = 0;
  uint64_t writev_frames = 0;
  /// Encode-arena slots acquired that already had capacity (a reused
  /// pooled buffer — the steady state), and the bytes currently held by
  /// pooled per-connection encode buffers across all loops.
  uint64_t pool_hits = 0;
  uint64_t pool_bytes = 0;
};

class RpcServer {
 public:
  /// `engine` and `db` must outlive the server; `db` is the database the
  /// engine serves (used to parse Purchase/AppendBuyers SQL). The only
  /// write path through it is ApplySellerDelta, which commits via the
  /// engine's versioned catalog on the single writer thread — reads
  /// stay lock-free throughout.
  RpcServer(ShardedPricingEngine* engine, db::Database* db,
            RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens, and spawns the loop + writer threads. Fails if the
  /// address is unavailable or the server already started.
  Status Start();

  /// Graceful shutdown; idempotent. See the class comment.
  void Stop();

  /// The bound port (after Start()).
  uint16_t port() const;

  RpcServerStats stats() const;

  /// Sum over loop threads of the latest RpcServerOptions::alloc_probe
  /// sample each took at the end of a tick; 0 when the hook is unset.
  /// Read it only while traffic is quiescent (a loop's sample lands
  /// after its tick's flush) — bench/test use only.
  uint64_t alloc_probe_total() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qp::serve::rpc

#endif  // QP_SERVE_RPC_SERVER_H_
