#include "serve/rpc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qp::serve::rpc {

RpcClient::~RpcClient() { Disconnect(); }

Status RpcClient::Connect(const std::string& address, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("RpcClient already connected");
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad address: " + address);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::Internal("connect() failed: " +
                            std::string(std::strerror(errno)));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  in_.clear();
  parked_.clear();
  return Status::OK();
}

void RpcClient::Disconnect() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  in_.clear();
  parked_.clear();
}

Status RpcClient::SendFrame(const std::vector<uint8_t>& frame) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = send(fd_, frame.data() + sent, frame.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Disconnect();
      return Status::Internal("send() failed: " +
                              std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RpcClient::ReceiveFrame(RpcReply* out) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    ExtractResult result =
        ExtractFrame(in_.data(), in_.size(), &consumed, &frame);
    if (result == ExtractResult::kError) {
      Disconnect();
      return Status::Internal("malformed frame from server");
    }
    if (result == ExtractResult::kFrame) {
      out->request_id = frame.request_id;
      out->type = frame.type;
      out->code = WireCode::kOk;
      out->message.clear();
      bool ok = false;
      switch (frame.type) {
        case MsgType::kQuoteReply:
          ok = DecodeQuoteReply(frame.body, &out->quote);
          break;
        case MsgType::kQuoteBatchReply:
          ok = DecodeQuoteBatchReply(frame.body, &out->quotes);
          break;
        case MsgType::kPurchaseReply:
          ok = DecodePurchaseReply(frame.body, &out->purchase);
          break;
        case MsgType::kAppendReply:
          ok = DecodeAppendReply(frame.body, &out->append);
          if (ok) {
            out->code = out->append.code;
            out->message = out->append.message;
          }
          break;
        case MsgType::kStatsReply:
          ok = DecodeStatsReply(frame.body, &out->stats);
          break;
        case MsgType::kErrorReply:
          ok = DecodeErrorReply(frame.body, &out->code, &out->message);
          break;
        default:
          ok = false;
          break;
      }
      in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(consumed));
      if (!ok) {
        Disconnect();
        return Status::Internal("undecodable reply from server");
      }
      return Status::OK();
    }
    // kNeedMore: block for more bytes.
    uint8_t buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Disconnect();
      return Status::Internal("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Disconnect();
      return Status::Internal("recv() failed: " +
                              std::string(std::strerror(errno)));
    }
    in_.insert(in_.end(), buf, buf + n);
  }
}

Status RpcClient::WaitFor(uint64_t id, RpcReply* out) {
  auto parked = parked_.find(id);
  if (parked != parked_.end()) {
    *out = std::move(parked->second);
    parked_.erase(parked);
    return Status::OK();
  }
  for (;;) {
    RpcReply reply;
    QP_RETURN_IF_ERROR(ReceiveFrame(&reply));
    if (reply.request_id == id) {
      *out = std::move(reply);
      return Status::OK();
    }
    parked_[reply.request_id] = std::move(reply);
  }
}

Status RpcClient::Receive(RpcReply* out) {
  if (!parked_.empty()) {
    auto it = parked_.begin();
    *out = std::move(it->second);
    parked_.erase(it);
    return Status::OK();
  }
  return ReceiveFrame(out);
}

Result<uint64_t> RpcClient::SendQuote(const std::vector<uint32_t>& bundle) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeQuoteRequest(id, bundle)));
  return id;
}

Result<uint64_t> RpcClient::SendQuoteBatch(
    const std::vector<std::vector<uint32_t>>& bundles) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeQuoteBatchRequest(id, bundles)));
  return id;
}

Result<uint64_t> RpcClient::SendPurchase(const std::string& sql,
                                         double valuation) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodePurchaseRequest(id, sql, valuation)));
  return id;
}

Result<uint64_t> RpcClient::SendAppendBuyers(
    const std::vector<WireBuyer>& buyers) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeAppendRequest(id, buyers)));
  return id;
}

Result<uint64_t> RpcClient::SendStats() {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeStatsRequest(id)));
  return id;
}

Status RpcClient::Quote(const std::vector<uint32_t>& bundle, RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendQuote(bundle));
  return WaitFor(id, out);
}

Status RpcClient::QuoteBatch(const std::vector<std::vector<uint32_t>>& bundles,
                             RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendQuoteBatch(bundles));
  return WaitFor(id, out);
}

Status RpcClient::Purchase(const std::string& sql, double valuation,
                           RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendPurchase(sql, valuation));
  return WaitFor(id, out);
}

Status RpcClient::AppendBuyers(const std::vector<WireBuyer>& buyers,
                               RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendAppendBuyers(buyers));
  return WaitFor(id, out);
}

Status RpcClient::Stats(RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendStats());
  return WaitFor(id, out);
}

}  // namespace qp::serve::rpc
