#include "serve/rpc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "common/stopwatch.h"

namespace qp::serve::rpc {
namespace {

/// Remaining budget for a poll() call: -1 (forever) when the configured
/// timeout is <= 0, otherwise what is left of it (0 = expired; poll
/// returns immediately and the caller surfaces DeadlineExceeded).
int RemainingMs(const Stopwatch& watch, int timeout_ms) {
  if (timeout_ms <= 0) return -1;
  double left = static_cast<double>(timeout_ms) - watch.ElapsedMillis();
  return left <= 0.0 ? 0 : static_cast<int>(left) + 1;
}

/// Waits for `events` on fd within timeout_ms (-1 = forever).
Status PollFd(int fd, short events, int timeout_ms, const char* what) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    int rc = poll(&p, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("poll() failed: ") +
                            std::strerror(errno));
  }
}

}  // namespace

double RetryBackoffMs(const RetryPolicy& policy, int retry, Rng& rng) {
  double ms = static_cast<double>(policy.initial_backoff_ms) *
              std::pow(policy.backoff_multiplier, retry);
  ms = std::min(ms, static_cast<double>(policy.max_backoff_ms));
  // Multiplicative jitter de-synchronizes clients that backed off at the
  // same tick (the thundering-herd failure mode).
  double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0) ms *= rng.UniformReal(1.0 - jitter, 1.0);
  return std::max(ms, 0.0);
}

RpcClient::~RpcClient() { Disconnect(); }

Status RpcClient::Connect(const std::string& address, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("RpcClient already connected");
  address_ = address;
  port_ = port;
  // Non-blocking from birth: the handshake and every later send/recv
  // poll against this client's deadlines instead of parking in the
  // kernel indefinitely.
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad address: " + address);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // POSIX: a connect() interrupted by a signal keeps establishing
    // asynchronously — EINTR means in-progress here, NOT failure, and
    // retrying connect() would return EALREADY. Poll like EINPROGRESS.
    if (errno != EINPROGRESS && errno != EINTR) {
      int err = errno;
      close(fd);
      if (err == ECONNREFUSED) {
        return Status::Unavailable("connection refused: " + address + ":" +
                                   std::to_string(port));
      }
      return Status::Internal("connect() failed: " +
                              std::string(std::strerror(err)));
    }
    Status ready =
        PollFd(fd, POLLOUT, options_.connect_timeout_ms, "connect()");
    if (!ready.ok()) {
      close(fd);
      return ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      close(fd);
      if (err == ECONNREFUSED) {
        return Status::Unavailable("connection refused: " + address + ":" +
                                   std::to_string(port));
      }
      return Status::Internal("connect() failed: " +
                              std::string(std::strerror(err)));
    }
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  in_.clear();
  parked_.clear();
  return Status::OK();
}

void RpcClient::Disconnect() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  in_.clear();
  parked_.clear();
}

Status RpcClient::SendFrame(const std::vector<uint8_t>& frame) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Stopwatch watch;
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = send(fd_, frame.data() + sent, frame.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status ready = PollFd(fd_, POLLOUT,
                              RemainingMs(watch, options_.send_timeout_ms),
                              "send()");
        if (!ready.ok()) {
          // A torn request frame desynchronizes the stream; the
          // connection is unusable either way.
          Disconnect();
          return ready;
        }
        continue;
      }
      Disconnect();
      return Status::Internal("send() failed: " +
                              std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RpcClient::ReceiveFrame(RpcReply* out) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Stopwatch watch;
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    ExtractResult result =
        ExtractFrame(in_.data(), in_.size(), &consumed, &frame);
    if (result == ExtractResult::kError) {
      Disconnect();
      return Status::Internal("malformed frame from server");
    }
    if (result == ExtractResult::kFrame) {
      out->request_id = frame.request_id;
      out->type = frame.type;
      out->code = WireCode::kOk;
      out->message.clear();
      bool ok = false;
      switch (frame.type) {
        case MsgType::kQuoteReply:
          ok = DecodeQuoteReply(frame.body, &out->quote);
          break;
        case MsgType::kQuoteBatchReply:
          ok = DecodeQuoteBatchReply(frame.body, &out->quotes);
          break;
        case MsgType::kPurchaseReply:
          ok = DecodePurchaseReply(frame.body, &out->purchase);
          break;
        case MsgType::kAppendReply:
          ok = DecodeAppendReply(frame.body, &out->append);
          if (ok) {
            out->code = out->append.code;
            out->message = out->append.message;
          }
          break;
        case MsgType::kApplySellerDeltaReply:
          ok = DecodeApplySellerDeltaReply(frame.body, &out->seller_delta);
          if (ok) {
            out->code = out->seller_delta.code;
            out->message = out->seller_delta.message;
          }
          break;
        case MsgType::kStatsReply:
          ok = DecodeStatsReply(frame.body, &out->stats);
          break;
        case MsgType::kErrorReply:
          ok = DecodeErrorReply(frame.body, &out->code, &out->message);
          break;
        default:
          ok = false;
          break;
      }
      in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(consumed));
      if (!ok) {
        Disconnect();
        return Status::Internal("undecodable reply from server");
      }
      return Status::OK();
    }
    // kNeedMore: wait (within the recv deadline) for more bytes.
    uint8_t buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Disconnect();
      return Status::Internal("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        QP_RETURN_IF_ERROR(PollFd(fd_, POLLIN,
                                  RemainingMs(watch, options_.recv_timeout_ms),
                                  "recv()"));
        // A DeadlineExceeded above returns WITHOUT disconnecting: frames
        // are length-prefixed, so the buffered partial frame stays valid
        // and a later Receive() can finish collecting the reply.
        continue;
      }
      Disconnect();
      return Status::Internal("recv() failed: " +
                              std::string(std::strerror(errno)));
    }
    in_.insert(in_.end(), buf, buf + n);
  }
}

Status RpcClient::WaitFor(uint64_t id, RpcReply* out) {
  auto parked = parked_.find(id);
  if (parked != parked_.end()) {
    *out = std::move(parked->second);
    parked_.erase(parked);
    return Status::OK();
  }
  for (;;) {
    RpcReply reply;
    QP_RETURN_IF_ERROR(ReceiveFrame(&reply));
    if (reply.request_id == id) {
      *out = std::move(reply);
      return Status::OK();
    }
    parked_[reply.request_id] = std::move(reply);
  }
}

Status RpcClient::Receive(RpcReply* out) {
  if (!parked_.empty()) {
    auto it = parked_.begin();
    *out = std::move(it->second);
    parked_.erase(it);
    return Status::OK();
  }
  return ReceiveFrame(out);
}

Result<uint64_t> RpcClient::SendQuote(const std::vector<uint32_t>& bundle) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeQuoteRequest(id, bundle)));
  return id;
}

Result<uint64_t> RpcClient::SendQuoteBatch(
    const std::vector<std::vector<uint32_t>>& bundles) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeQuoteBatchRequest(id, bundles)));
  return id;
}

Result<uint64_t> RpcClient::SendPurchase(const std::string& sql,
                                         double valuation) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodePurchaseRequest(id, sql, valuation)));
  return id;
}

Result<uint64_t> RpcClient::SendAppendBuyers(
    const std::vector<WireBuyer>& buyers) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeAppendRequest(id, buyers)));
  return id;
}

Result<uint64_t> RpcClient::SendApplySellerDelta(
    const market::CellDelta& delta) {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeApplySellerDeltaRequest(id, delta)));
  return id;
}

Result<uint64_t> RpcClient::SendStats() {
  uint64_t id = NextId();
  QP_RETURN_IF_ERROR(SendFrame(EncodeStatsRequest(id)));
  return id;
}

Status RpcClient::Quote(const std::vector<uint32_t>& bundle, RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendQuote(bundle));
  return WaitFor(id, out);
}

Status RpcClient::QuoteBatch(const std::vector<std::vector<uint32_t>>& bundles,
                             RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendQuoteBatch(bundles));
  return WaitFor(id, out);
}

Status RpcClient::Purchase(const std::string& sql, double valuation,
                           RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendPurchase(sql, valuation));
  return WaitFor(id, out);
}

Status RpcClient::AppendBuyers(const std::vector<WireBuyer>& buyers,
                               RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendAppendBuyers(buyers));
  return WaitFor(id, out);
}

Status RpcClient::ApplySellerDelta(const market::CellDelta& delta,
                                   RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendApplySellerDelta(delta));
  return WaitFor(id, out);
}

Status RpcClient::Stats(RpcReply* out) {
  QP_ASSIGN_OR_RETURN(uint64_t id, SendStats());
  return WaitFor(id, out);
}

Status RpcClient::QuoteWithRetry(const std::vector<uint32_t>& bundle,
                                 const RetryPolicy& policy, RpcReply* out,
                                 RetryStats* stats) {
  Rng rng(policy.seed);
  RetryStats local;
  Status last = Status::OK();
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      double ms = RetryBackoffMs(policy, attempt - 1, rng);
      local.backoff_ms += ms;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
    if (fd_ < 0) {
      // Quotes are idempotent and read-only: reconnecting and resending
      // can at worst serve the same price twice.
      last = Connect(address_, port_);
      if (!last.ok()) continue;
      ++local.reconnects;
    }
    ++local.attempts;
    last = Quote(bundle, out);
    if (!last.ok()) continue;
    // A pushback reply on the final attempt triggers no retry, so it is
    // not counted as one — the counters tally retries, not replies.
    if (out->code == WireCode::kBackpressure) {
      if (attempt + 1 < policy.max_attempts) ++local.backpressure_retries;
      continue;
    }
    if (out->code == WireCode::kUnavailable) {
      if (attempt + 1 < policy.max_attempts) ++local.unavailable_retries;
      continue;
    }
    break;  // Served, or a terminal application error (kBadRequest, ...).
  }
  if (stats != nullptr) *stats = local;
  return last;
}

Status RpcClient::AppendBuyersWithRetry(const std::vector<WireBuyer>& buyers,
                                        const RetryPolicy& policy,
                                        RpcReply* out, RetryStats* stats) {
  Rng rng(policy.seed);
  RetryStats local;
  Status last = Status::OK();
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      double ms = RetryBackoffMs(policy, attempt - 1, rng);
      local.backoff_ms += ms;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
    if (fd_ < 0 && local.attempts == 0) {
      // Connecting before the FIRST send is safe (nothing in flight);
      // after that a lost connection means an append of unknown fate —
      // surface it instead of risking a double apply.
      last = Connect(address_, port_);
      if (!last.ok()) continue;
      ++local.reconnects;
    }
    ++local.attempts;
    last = AppendBuyers(buyers, out);
    if (!last.ok()) break;  // At-most-once: transport failure is terminal.
    if (out->code == WireCode::kBackpressure) {
      if (attempt + 1 < policy.max_attempts) ++local.backpressure_retries;
      continue;
    }
    if (out->code == WireCode::kUnavailable) {
      if (attempt + 1 < policy.max_attempts) ++local.unavailable_retries;
      continue;
    }
    break;
  }
  if (stats != nullptr) *stats = local;
  return last;
}

Status RpcClient::ApplySellerDeltaWithRetry(const market::CellDelta& delta,
                                            const RetryPolicy& policy,
                                            RpcReply* out, RetryStats* stats) {
  Rng rng(policy.seed);
  RetryStats local;
  Status last = Status::OK();
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      double ms = RetryBackoffMs(policy, attempt - 1, rng);
      local.backoff_ms += ms;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
    if (fd_ < 0 && local.attempts == 0) {
      // Same at-most-once shape as appends: connect only before the
      // FIRST send; a later lost connection means a delta of unknown
      // fate, surfaced to the caller rather than resent.
      last = Connect(address_, port_);
      if (!last.ok()) continue;
      ++local.reconnects;
    }
    ++local.attempts;
    last = ApplySellerDelta(delta, out);
    if (!last.ok()) break;  // At-most-once: transport failure is terminal.
    if (out->code == WireCode::kBackpressure) {
      if (attempt + 1 < policy.max_attempts) ++local.backpressure_retries;
      continue;
    }
    if (out->code == WireCode::kUnavailable) {
      if (attempt + 1 < policy.max_attempts) ++local.unavailable_retries;
      continue;
    }
    break;
  }
  if (stats != nullptr) *stats = local;
  return last;
}

}  // namespace qp::serve::rpc
