#include "serve/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "core/book_merge.h"
#include "core/pricing.h"

namespace qp::serve {

const PriceBookSnapshot& MergedBookView::shard(int s) const {
  if (materialized_.empty()) materialized_.resize(views_.size());
  auto& slot = materialized_[static_cast<size_t>(s)];
  if (slot == nullptr) slot = views_[static_cast<size_t>(s)].Materialize();
  return *slot;
}

uint64_t MergedBookView::version() const {
  uint64_t total = 0;
  for (const BookView& view : views_) total += view.version();
  return total;
}

std::vector<uint64_t> MergedBookView::version_vector() const {
  std::vector<uint64_t> versions;
  versions.reserve(views_.size());
  for (const BookView& view : views_) versions.push_back(view.version());
  return versions;
}

double MergedBookView::best_revenue() const {
  std::vector<double> parts;
  parts.reserve(views_.size());
  for (const BookView& view : views_) {
    parts.push_back(view.num_edges() > 0 ? view.best_revenue() : 0.0);
  }
  return core::AdditivePrice(parts);
}

Quote MergedBookView::QuoteBundle(const std::vector<uint32_t>& bundle,
                                  int* touched_shards) const {
  QuoteScratch scratch;
  Quote quote;
  QuoteBundleInto(bundle, &scratch, &quote, touched_shards);
  return quote;
}

void MergedBookView::QuoteBundleInto(const std::vector<uint32_t>& bundle,
                                     QuoteScratch* scratch, Quote* out,
                                     int* touched_shards) const {
  partition_->SplitBundleInto(bundle, &scratch->parts);
  scratch->prices.clear();
  scratch->labels.clear();
  for (size_t s = 0; s < views_.size(); ++s) {
    if (scratch->parts[s].empty()) continue;
    const BookView& view = views_[s];
    // Per-shard quote without the intermediate Quote: the price is the
    // serving result's bundle price and the label is the base snapshot's
    // algorithm name (stable while the view's pin is held) — exactly
    // what BookView::QuoteBundle packages.
    scratch->prices.push_back(
        view.PriceBundle(view.best_index(), scratch->parts[s]));
    scratch->labels.push_back(&view.best_algorithm());
  }
  if (touched_shards != nullptr) {
    *touched_shards = static_cast<int>(scratch->prices.size());
  }
  if (scratch->labels.empty()) {
    // Nothing touched (empty bundle): report the serving algorithms of
    // every shard so a one-shard router matches the monolithic engine's
    // empty-bundle quote exactly.
    for (const BookView& view : views_) {
      scratch->labels.push_back(&view.best_algorithm());
    }
  }
  out->price = core::AdditivePrice(scratch->prices);
  out->version = version();
  // The scalar version is monotone but collidable across shard-version
  // vectors; the vector is the collision-free stamp (see version()).
  out->shard_versions.clear();
  for (const BookView& view : views_) {
    out->shard_versions.push_back(view.version());
  }
  core::MergeAlgorithmLabelsInto(scratch->labels, &out->algorithm);
}

ShardedPricingEngine::ShardedPricingEngine(const db::Database* db,
                                           market::SupportPartition partition,
                                           ShardedEngineOptions options)
    : db_(db),
      partition_(std::move(partition)),
      options_(std::move(options)),
      catalog_(db, &epochs_, options_.engine.fold_every),
      prober_(db, partition_.support,
              [&] {
                // The router's probe fan-out width is the router's thread
                // budget, not the per-shard build width.
                market::BuildOptions build = options_.engine.build;
                build.num_threads = options_.num_threads;
                return build;
              }(),
              &catalog_) {
  shards_.reserve(static_cast<size_t>(partition_.num_shards));
  for (int s = 0; s < partition_.num_shards; ++s) {
    // Shards share the router's epoch manager (a merged view costs one
    // pin, not one per shard) and the router's versioned catalog (one
    // committed-delta overlay across every shard's probes).
    shards_.push_back(std::make_unique<PricingEngine>(
        db_, partition_.shard_support[static_cast<size_t>(s)],
        options_.engine, &epochs_, &catalog_));
  }
  shard_edge_counts_.assign(shards_.size(), 0);
  shard_ready_ = std::make_unique<std::atomic<bool>[]>(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_ready_[s].store(true, std::memory_order_relaxed);
  }
}

Status ShardedPricingEngine::AppendBuyers(
    const std::vector<db::BoundQuery>& queries,
    const core::Valuations& valuations) {
  if (queries.size() != valuations.size()) {
    return Status::InvalidArgument(
        "AppendBuyers: one valuation per query required");
  }
  if (queries.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // One probe per query against the GLOBAL support — the same probe work
  // the monolithic engine would do — fanned over the router's threads.
  return AppendRouted(prober_.ComputeConflictSets(queries), valuations);
}

Status ShardedPricingEngine::AppendBuyersPrecomputed(
    std::vector<std::vector<uint32_t>> conflict_sets,
    const core::Valuations& valuations) {
  if (conflict_sets.size() != valuations.size()) {
    return Status::InvalidArgument(
        "AppendBuyersPrecomputed: one valuation per conflict set required");
  }
  const uint32_t num_items = partition_.num_items();
  for (const std::vector<uint32_t>& edge : conflict_sets) {
    for (uint32_t item : edge) {
      if (item >= num_items) {
        return Status::InvalidArgument(
            "AppendBuyersPrecomputed: item index outside the partitioned "
            "support");
      }
    }
  }
  if (conflict_sets.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return AppendRouted(std::move(conflict_sets), valuations);
}

Status ShardedPricingEngine::AppendRouted(
    std::vector<std::vector<uint32_t>> conflict_sets,
    const core::Valuations& valuations) {
  const size_t num_shards = shards_.size();
  // Write-ahead: the GLOBAL conflict sets hit the journal before any
  // shard applies them — a failed log aborts the append, so recovery
  // never misses an op that reached a book. Logging global (not routed)
  // edges keeps replay routing-identical: AppendBuyersPrecomputed on the
  // replayed sets re-derives the same owners deterministically.
  if (log_ != nullptr) {
    QP_RETURN_IF_ERROR(log_->LogAppend(conflict_sets, valuations));
  }
  // Route serially in arrival order (the deterministic part), then fan
  // the per-shard appends out (each shard's work is independent and
  // internally thread-count-invariant).
  std::vector<std::vector<std::vector<uint32_t>>> shard_edges(num_shards);
  std::vector<core::Valuations> shard_valuations(num_shards);
  for (size_t i = 0; i < conflict_sets.size(); ++i) {
    std::vector<std::vector<uint32_t>> parts =
        partition_.SplitBundle(conflict_sets[i]);
    int touched = 0;
    size_t owner = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      if (parts[s].empty()) continue;
      ++touched;
      if (parts[s].size() > parts[owner].size() || parts[owner].empty()) {
        owner = s;
      }
    }
    if (touched == 0) {
      // Empty conflict set: place on the shard with the fewest edges so
      // far (ties to the lowest id) so empty edges spread evenly.
      for (size_t s = 1; s < num_shards; ++s) {
        if (shard_edge_counts_[s] < shard_edge_counts_[owner]) owner = s;
      }
    } else if (touched > 1) {
      cross_shard_appends_.fetch_add(1, std::memory_order_relaxed);
    }
    shard_edges[owner].push_back(std::move(parts[owner]));
    shard_valuations[owner].push_back(valuations[i]);
    ++shard_edge_counts_[owner];
  }

  std::vector<Status> statuses(num_shards, Status::OK());
  common::ThreadPool pool(options_.num_threads);
  pool.ParallelFor(static_cast<int>(num_shards), [&](int s) {
    auto us = static_cast<size_t>(s);
    if (shard_edges[us].empty()) return;
    statuses[us] = shards_[us]->AppendBuyersPrecomputed(
        std::move(shard_edges[us]), shard_valuations[us]);
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  if (log_ != nullptr) {
    QP_RETURN_IF_ERROR(log_->OnPublish(*this));
  }
  return Status::OK();
}

MergedBookView ShardedPricingEngine::snapshot() const {
  MergedBookView view;
  SnapshotInto(&view);
  return view;
}

void ShardedPricingEngine::SnapshotInto(MergedBookView* view) const {
  // One epoch pin covers every shard (they share the router's manager);
  // the per-shard head loads are plain acquire loads. Pin the fresh
  // epoch FIRST: the move-assign constructs the new Guard before
  // releasing the view's old pin, so heads loaded below are never
  // reclaimable in between.
  view->guard_ = common::EpochManager::Guard(epochs_);
  view->views_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    view->views_[s] = shards_[s]->book_view();
  }
  view->partition_ = &partition_;
  if (!view->materialized_.empty()) view->materialized_.clear();
}

Quote ShardedPricingEngine::QuoteBundle(
    const std::vector<uint32_t>& bundle) const {
  MergedBookView view = snapshot();
  quotes_served_.fetch_add(1, std::memory_order_relaxed);
  int touched = 0;
  Quote quote = view.QuoteBundle(bundle, &touched);
  if (touched > 1) {
    cross_shard_quotes_.fetch_add(1, std::memory_order_relaxed);
  }
  return quote;
}

std::vector<Quote> ShardedPricingEngine::QuoteBatch(
    std::span<const std::vector<uint32_t>> bundles) const {
  // One view pin (one snapshot load per shard) + one stats update for the
  // whole batch; every quote carries the same merged generation.
  MergedBookView view = snapshot();
  quotes_served_.fetch_add(bundles.size(), std::memory_order_relaxed);
  std::vector<Quote> quotes;
  quotes.reserve(bundles.size());
  uint64_t crossing = 0;
  for (const std::vector<uint32_t>& bundle : bundles) {
    int touched = 0;
    quotes.push_back(view.QuoteBundle(bundle, &touched));
    if (touched > 1) ++crossing;
  }
  if (crossing > 0) {
    cross_shard_quotes_.fetch_add(crossing, std::memory_order_relaxed);
  }
  return quotes;
}

PurchaseOutcome ShardedPricingEngine::Purchase(const db::BoundQuery& query,
                                               double valuation) {
  PurchaseOutcome outcome;
  outcome.valuation = valuation;
  // Reader side end to end, like the monolithic engine: the global probe
  // reads the const database through overlays (prepared state shared via
  // the router's cache), the quote pins one view, and the sale lands in
  // atomic counters.
  uint64_t pinned_generation = 0;
  outcome.bundle = prober_.ConflictSetFor(query, &pinned_generation);
  // Staleness sample: committed generations the pinned probe could not
  // see (head may have advanced while the probe ran).
  const uint64_t behind = catalog_.head_generation() - pinned_generation;
  staleness_samples_.fetch_add(1, std::memory_order_relaxed);
  staleness_sum_.fetch_add(behind, std::memory_order_relaxed);
  uint64_t prev_max = staleness_max_.load(std::memory_order_relaxed);
  while (behind > prev_max && !staleness_max_.compare_exchange_weak(
                                  prev_max, behind,
                                  std::memory_order_relaxed)) {
  }
  outcome.status = ReadyFor(outcome.bundle);
  if (!outcome.status.ok()) {
    // The buyer saw no quote (a cold shard would misprice the bundle);
    // no purchase is recorded.
    return outcome;
  }
  MergedBookView view = snapshot();
  int touched = 0;
  outcome.quote = view.QuoteBundle(outcome.bundle, &touched);
  if (touched > 1) {
    cross_shard_quotes_.fetch_add(1, std::memory_order_relaxed);
  }
  quotes_served_.fetch_add(1, std::memory_order_relaxed);
  outcome.accepted = outcome.quote.price <= valuation + core::kSellTolerance;
  purchases_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.accepted) {
    purchases_accepted_.fetch_add(1, std::memory_order_relaxed);
    sale_revenue_.fetch_add(outcome.quote.price, std::memory_order_relaxed);
  }
  return outcome;
}

Status ShardedPricingEngine::ApplySellerDelta(db::Database& db,
                                              const market::CellDelta& delta) {
  if (&db != db_) {
    return Status::InvalidArgument(
        "ApplySellerDelta: database is not this engine's database");
  }
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Write-ahead, like appends: the delta is durable before the commit so
  // a crash between log and commit re-applies it on recovery (idempotent
  // — deltas set absolute cell values).
  if (log_ != nullptr) {
    QP_RETURN_IF_ERROR(log_->LogSellerDelta(delta));
  }
  // Invalidate every cache BEFORE the single catalog commit, keyed to
  // the generation it will publish: a probe pinned on the pre-commit
  // head may keep (or even re-insert) pre-edit prepared state — correct
  // for its generation — while any probe that pins the new head rebuilds.
  // Selective: only prepared entries whose SensitiveColumns contain the
  // edited cell can have baked its old value into their probing state.
  // The head read is unguarded but safe: this mutex serializes every
  // commit and fold, so the head cannot be retired under the writer.
  const uint64_t next_generation = catalog_.head()->number + 1;
  prober_.InvalidatePreparedQueriesFor(delta, next_generation);
  for (const auto& shard : shards_) {
    shard->InvalidatePreparedQueriesFor(delta, next_generation);
  }
  catalog_.Commit(db, delta.table, delta.row, delta.column, delta.new_value);
  return Status::OK();
}

void ShardedPricingEngine::SetWriterLog(WriterLog* log) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  log_ = log;
}

void ShardedPricingEngine::BeginRestore() {
  cold_shards_.store(static_cast<int>(shards_.size()),
                     std::memory_order_relaxed);
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_ready_[s].store(false, std::memory_order_release);
  }
}

void ShardedPricingEngine::FinishShardRestore(int s) {
  if (!shard_ready_[static_cast<size_t>(s)].exchange(
          true, std::memory_order_release)) {
    cold_shards_.fetch_sub(1, std::memory_order_release);
  }
}

Status ShardedPricingEngine::ReadyFor(
    const std::vector<uint32_t>& bundle) const {
  if (cold_shards_.load(std::memory_order_acquire) == 0) return Status::OK();
  for (uint32_t item : bundle) {
    int s = partition_.shard_of_item[item];
    if (!shard_ready_[static_cast<size_t>(s)].load(
            std::memory_order_acquire)) {
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " is warming after restore");
    }
  }
  return Status::OK();
}

Result<Quote> ShardedPricingEngine::TryQuoteBundle(
    const std::vector<uint32_t>& bundle) const {
  QP_RETURN_IF_ERROR(ReadyFor(bundle));
  return QuoteBundle(bundle);
}

std::vector<Result<Quote>> ShardedPricingEngine::TryQuoteBatch(
    std::span<const std::vector<uint32_t>> bundles) const {
  std::vector<Result<Quote>> out;
  out.reserve(bundles.size());
  if (cold_shards_.load(std::memory_order_acquire) == 0) {
    // All warm (the steady state): one pinned view, exactly QuoteBatch.
    for (Quote& quote : QuoteBatch(bundles)) out.push_back(std::move(quote));
    return out;
  }
  MergedBookView view = snapshot();
  uint64_t crossing = 0, served = 0;
  for (const std::vector<uint32_t>& bundle : bundles) {
    Status ready = ReadyFor(bundle);
    if (!ready.ok()) {
      out.push_back(std::move(ready));
      continue;
    }
    int touched = 0;
    out.push_back(view.QuoteBundle(bundle, &touched));
    ++served;
    if (touched > 1) ++crossing;
  }
  quotes_served_.fetch_add(served, std::memory_order_relaxed);
  if (crossing > 0) {
    cross_shard_quotes_.fetch_add(crossing, std::memory_order_relaxed);
  }
  return out;
}

void ShardedPricingEngine::TryQuoteBatchInto(
    std::span<const std::vector<uint32_t>> bundles,
    QuoteBatchScratch* scratch) const {
  // Grow-only result storage: shrinking would destroy Quote elements and
  // forfeit their string/vector capacity when the batch size fluctuates.
  if (scratch->quotes.size() < bundles.size()) {
    scratch->quotes.resize(bundles.size());
  }
  if (scratch->statuses.size() < bundles.size()) {
    scratch->statuses.resize(bundles.size());
  }
  SnapshotInto(&scratch->view);
  if (cold_shards_.load(std::memory_order_acquire) == 0) {
    // All warm (the steady state): one pinned view, exactly QuoteBatch —
    // and no allocation once the scratch is at high-water capacity.
    quotes_served_.fetch_add(bundles.size(), std::memory_order_relaxed);
    uint64_t crossing = 0;
    for (size_t i = 0; i < bundles.size(); ++i) {
      scratch->statuses[i] = Status::OK();
      int touched = 0;
      scratch->view.QuoteBundleInto(bundles[i], &scratch->split,
                                    &scratch->quotes[i], &touched);
      if (touched > 1) ++crossing;
    }
    if (crossing > 0) {
      cross_shard_quotes_.fetch_add(crossing, std::memory_order_relaxed);
    }
    return;
  }
  uint64_t crossing = 0, served = 0;
  for (size_t i = 0; i < bundles.size(); ++i) {
    Status ready = ReadyFor(bundles[i]);
    if (!ready.ok()) {
      scratch->statuses[i] = std::move(ready);
      continue;
    }
    scratch->statuses[i] = Status::OK();
    int touched = 0;
    scratch->view.QuoteBundleInto(bundles[i], &scratch->split,
                                  &scratch->quotes[i], &touched);
    ++served;
    if (touched > 1) ++crossing;
  }
  quotes_served_.fetch_add(served, std::memory_order_relaxed);
  if (crossing > 0) {
    cross_shard_quotes_.fetch_add(crossing, std::memory_order_relaxed);
  }
}

ShardedPricingEngine::ReaderStats ShardedPricingEngine::reader_stats() const {
  ReaderStats out;
  out.quotes_served = quotes_served_.load(std::memory_order_relaxed);
  out.purchases = purchases_.load(std::memory_order_relaxed);
  out.purchases_accepted = purchases_accepted_.load(std::memory_order_relaxed);
  out.sale_revenue = sale_revenue_.load(std::memory_order_relaxed);
  out.unavailable = unavailable_.load(std::memory_order_relaxed);
  out.prepared = prober_.prepared_stats();
  out.catalog = catalog_stats();
  return out;
}

EngineStats::CatalogStats ShardedPricingEngine::catalog_stats() const {
  // Lock-free: the catalog's own counters are atomics (its stats() pins
  // an epoch for the pending-cell gauge) and the staleness samples are
  // router-side atomics.
  EngineStats::CatalogStats out;
  const db::VersionedDatabase::Stats cs = catalog_.stats();
  out.generations_published = cs.generations_published;
  out.folds = cs.folds;
  out.fold_retries = cs.fold_retries;
  out.deltas_pending = cs.deltas_pending;
  out.deltas_folded = cs.deltas_folded;
  out.fold_nanos = cs.fold_nanos;
  out.staleness_samples = staleness_samples_.load(std::memory_order_relaxed);
  out.staleness_sum = staleness_sum_.load(std::memory_order_relaxed);
  out.staleness_max = staleness_max_.load(std::memory_order_relaxed);
  return out;
}

ShardedEngineStats ShardedPricingEngine::stats() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  ShardedEngineStats out;
  out.num_shards = num_shards();
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    EngineStats es = shard->stats();
    out.merged.version += es.version;
    out.merged.num_items += es.num_items;
    out.merged.num_edges += es.num_edges;
    out.merged.quotes_served += es.quotes_served;
    out.merged.purchases += es.purchases;
    out.merged.purchases_accepted += es.purchases_accepted;
    out.merged.sale_revenue += es.sale_revenue;
    out.merged.total_lps_solved += es.total_lps_solved;
    out.merged.last_reprice.Merge(es.last_reprice);
    out.merged.build_seconds += es.build_seconds;
    out.merged.conflict.Merge(es.conflict);
    out.merged.incidence.full_builds += es.incidence.full_builds;
    out.merged.incidence.merges += es.incidence.merges;
    out.merged.prepared.Merge(es.prepared);
    out.merged.publish.bases += es.publish.bases;
    out.merged.publish.deltas += es.publish.deltas;
    out.merged.publish.fallbacks += es.publish.fallbacks;
    out.merged.publish.chain_length =
        std::max(out.merged.publish.chain_length, es.publish.chain_length);
    out.shards.push_back(std::move(es));
  }
  // Shards share the router's epoch manager and versioned catalog, so
  // the per-shard copies of those stats all describe the same objects:
  // report each once, not summed. The catalog staleness samples are the
  // router's own (shard Purchase paths are unused behind the router).
  out.merged.epoch = epochs_.stats();
  out.merged.catalog = catalog_stats();
  // Router-side: the global prober's probe work and cache, plus the
  // reader counters (shard engines never see router quotes/purchases).
  out.merged.build_seconds += prober_.seconds();
  out.merged.conflict.Merge(prober_.stats());
  out.merged.prepared.Merge(prober_.prepared_stats());
  out.merged.quotes_served += quotes_served_.load(std::memory_order_relaxed);
  out.merged.purchases += purchases_.load(std::memory_order_relaxed);
  out.merged.purchases_accepted +=
      purchases_accepted_.load(std::memory_order_relaxed);
  out.merged.sale_revenue += sale_revenue_.load(std::memory_order_relaxed);
  out.cross_shard_appends =
      cross_shard_appends_.load(std::memory_order_relaxed);
  out.cross_shard_quotes = cross_shard_quotes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace qp::serve
