// On-disk format primitives for the durability subsystem (serve/persist).
//
// Every persisted file — shard checkpoints, the manifest, the op journal
// — is built from the same two pieces:
//
//  * CRC32-checksummed *sections*: a section is [u32 tag] [u32 byte_len]
//    [payload] [u32 crc32(payload)]. Readers validate the checksum before
//    handing the payload out, so a torn or bit-rotted file is detected as
//    such instead of deserializing garbage. Section payloads use the same
//    bounds-checked little-endian primitives as the wire protocol
//    (rpc::WireWriter / rpc::WireReader) — one encoding discipline for
//    bytes that leave the process, whether over a socket or to disk.
//  * Atomic whole-file replacement: WriteFileAtomic writes to
//    "<path>.tmp", optionally fsyncs, and rename()s over the target, so a
//    crash mid-write leaves either the old file or the new one, never a
//    half-written hybrid. (A same-directory rename is atomic on POSIX.)
//
// Checkpoint files open with kFileMagic + a format version; readers
// reject unknown versions up front rather than mis-parsing future
// layouts.
#ifndef QP_SERVE_PERSIST_FORMAT_H_
#define QP_SERVE_PERSIST_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qp::serve::persist {

/// First 8 bytes of every persist file ("QPPERS" + 2 spare).
inline constexpr uint64_t kFileMagic = 0x0000535245505051ULL;  // "QPPERS\0\0"
/// Bumped on incompatible layout changes; readers reject other versions.
inline constexpr uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size`
/// bytes, seeded with `seed` so checksums can be chained across buffers.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);
inline uint32_t Crc32(const std::vector<uint8_t>& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

/// Appends one checksummed section ([tag][len][payload][crc]) to `out`.
void AppendSection(uint32_t tag, const std::vector<uint8_t>& payload,
                   std::vector<uint8_t>* out);

/// One decoded section; `payload` aliases the reader's buffer.
struct Section {
  uint32_t tag = 0;
  const uint8_t* payload = nullptr;
  size_t size = 0;
};

/// Iterates the sections of a persist file body, validating each
/// section's CRC as it is pulled.
class SectionReader {
 public:
  SectionReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit SectionReader(const std::vector<uint8_t>& data)
      : SectionReader(data.data(), data.size()) {}

  bool AtEnd() const { return pos_ == size_; }

  /// Pulls the next section. Fails (kDataLoss-shaped Internal status) on
  /// a truncated header/payload or a CRC mismatch.
  Status Next(Section* out);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Prepends the file header (magic, kind tag, format version) to `out`.
void AppendFileHeader(uint32_t file_kind, std::vector<uint8_t>* out);

/// Validates the header and returns the offset of the first section.
/// `expected_kind` distinguishes shard files from manifests so a
/// misplaced rename cannot cross-load them.
Result<size_t> CheckFileHeader(const std::vector<uint8_t>& data,
                               uint32_t expected_kind);

// --- file IO -------------------------------------------------------------

/// Reads a whole file into memory. NotFound when it does not exist.
Result<std::vector<uint8_t>> ReadFile(const std::string& path);

/// Writes `data` to "<path>.tmp" and atomically rename()s it over
/// `path`. With `fsync_file`, the tmp file (and its directory) are
/// fsync'd before/after the rename — required for durability across OS
/// crashes; a plain process kill (SIGKILL) never loses renamed data, so
/// tests and benches skip the sync cost.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& data, bool fsync_file);

/// fsyncs a directory so a rename within it is durable across OS crashes.
Status SyncDir(const std::string& dir);

}  // namespace qp::serve::persist

#endif  // QP_SERVE_PERSIST_FORMAT_H_
