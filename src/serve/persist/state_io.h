// Serialization of one shard's complete pricing state, and the
// checkpoint manifest (serve/persist).
//
// A ShardState is everything a PricingEngine's writer owns: the appended
// conflict-set edges and valuations, the cross-generation RepriceState
// (refined item classes, valuation order, retained LPIP candidates), the
// generation counter + cumulative LP count, and the published book's
// PricingResults. Restoring it into a fresh engine
// (PricingEngine::RestoreState) reproduces the pre-checkpoint engine
// bit for bit: subsequent appends reprice through exactly the state a
// never-crashed engine would hold, so replayed books match the pre-crash
// ones in versions, revenues and LP counts — the replay-parity contract
// tests/serve/persist_test.cc pins.
//
// The manifest is a checkpoint's commit record: written last (atomic
// rename), it carries the sequence number, the per-shard version vector
// (MergedBookView::version_vector() at checkpoint time), the journal
// op id the checkpoint subsumes, a fingerprint of the support partition
// (a checkpoint must not restore into a differently-sharded router), and
// a whole-file CRC per shard file binding the manifest to the exact
// bytes it committed. A checkpoint directory without a valid manifest is
// not a checkpoint.
#ifndef QP_SERVE_PERSIST_STATE_IO_H_
#define QP_SERVE_PERSIST_STATE_IO_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/algorithms.h"
#include "core/reprice.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/rpc/wire.h"

namespace qp::serve::persist {

/// File-kind tags (format.h header field).
inline constexpr uint32_t kShardFileKind = 1;
inline constexpr uint32_t kManifestFileKind = 2;

/// One shard's full writer + published-book state.
struct ShardState {
  /// Engine generation counter (== published snapshot version).
  uint64_t version = 0;
  int total_lps_solved = 0;
  /// Shard support size; validated against the target engine on restore.
  uint32_t num_items = 0;
  /// Appended edges (shard-local item ids) in append order, and their
  /// valuations.
  std::vector<std::vector<uint32_t>> edges;
  core::Valuations valuations;
  /// Cross-generation reprice state (classes, order, LPIP candidates).
  core::RepriceState reprice;
  /// The published book: per-algorithm results + the generation's stats.
  std::vector<core::PricingResult> results;
  core::RepriceStats book_stats;

  /// Deep copy (PricingResult holds unique_ptr pricing functions).
  ShardState Clone() const;
};

/// Fails (Unimplemented) on a PricingFunction subclass the format does
/// not know — never silently drops a pricing.
Result<std::vector<uint8_t>> SerializeShardState(const ShardState& state);
Result<ShardState> DeserializeShardState(const std::vector<uint8_t>& data);

struct Manifest {
  uint64_t checkpoint_seq = 0;
  /// Journal ops with id <= this are baked into the checkpoint; replay
  /// skips them.
  uint64_t last_op_id = 0;
  uint32_t num_shards = 0;
  /// Per-shard book versions at checkpoint time (ascending shard order).
  std::vector<uint64_t> shard_versions;
  /// Fingerprint of the partition's item->shard map; restore refuses a
  /// checkpoint taken under a different partition.
  uint64_t partition_fingerprint = 0;
  /// Whole-file CRC32 of each committed shard file.
  std::vector<uint32_t> shard_file_crcs;
  /// Every seller delta applied before this checkpoint, in apply order.
  /// Shard books bake the deltas' effects in (conflict sets were probed
  /// against the edited database), but the database itself is the
  /// caller's to reload — recovery re-applies these so post-restore
  /// probes see the same data a never-crashed engine would. Re-applying
  /// an already-applied delta is a no-op (deltas set absolute values).
  std::vector<market::CellDelta> seller_deltas;
};

std::vector<uint8_t> SerializeManifest(const Manifest& manifest);
Result<Manifest> DeserializeManifest(const std::vector<uint8_t>& data);

/// Stable fingerprint of (num_items, shard_of_item) — the part of the
/// partition that determines routing and local item ids.
uint64_t PartitionFingerprint(const market::SupportPartition& partition);

/// CellDelta wire encoding, shared by the manifest and journal records.
void PutCellDelta(rpc::WireWriter& w, const market::CellDelta& delta);
Result<market::CellDelta> GetCellDelta(rpc::WireReader& r);

}  // namespace qp::serve::persist

#endif  // QP_SERVE_PERSIST_STATE_IO_H_
