// Durable price books: checkpoints + write-ahead op journal
// (serve/persist).
//
// Directory layout (one directory per sharded engine):
//
//   <dir>/checkpoint-<seq>/shard-<i>.ckpt   one ShardState per shard
//   <dir>/checkpoint-<seq>/MANIFEST         commit record, written last
//   <dir>/journal-<seq>.log                 ops after checkpoint <seq>
//
// A checkpoint is only real once its MANIFEST lands (atomic rename): the
// manifest carries the per-shard version vector, whole-file CRCs binding
// it to the exact shard bytes it committed, the partition fingerprint,
// the last journal op id it subsumes, and the cumulative seller deltas.
// journal-<seq>.log starts fresh when checkpoint <seq> commits, so each
// retained checkpoint owns the journal segment that follows it.
//
// Journal records are self-delimiting and individually checksummed:
//
//   [u32 len] [u8 op_type] [u64 op_id] [payload] [u32 crc]
//
// where len counts type+id+payload and crc covers those same bytes. A
// torn tail (crash mid-append) fails the length or CRC check and simply
// ends the valid journal — everything before it replays.
//
// Recovery = newest checkpoint whose manifest and shard CRCs all
// validate (older checkpoints are fallbacks when the newest is torn or
// bit-rotted), plus every journal segment at or after it, replayed in op
// order with ops the checkpoint already subsumes skipped. Because
// appends journal their GLOBAL conflict sets (pure functions of
// (db, query, support)) and replay routes them through the same
// deterministic router, the replayed books are bit-identical to the
// pre-crash ones: versions, revenues, LP counts.
//
// The CheckpointManager is the engine's WriterLog: every append/delta is
// journaled BEFORE it applies (write-ahead), and every N publishes it
// captures a new checkpoint and rotates the journal. It runs entirely
// under the engine's writer mutex — single-threaded by construction.
#ifndef QP_SERVE_PERSIST_CHECKPOINT_H_
#define QP_SERVE_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/persist/state_io.h"
#include "serve/sharded_engine.h"

namespace qp::serve::persist {

/// Journal op types.
inline constexpr uint8_t kAppendOp = 1;
inline constexpr uint8_t kSellerDeltaOp = 2;

/// One journaled writer op. Appends carry the buyers' GLOBAL conflict
/// sets + valuations (probing is a pure function of the database and
/// query, so replay skips it and is immune to later seller edits);
/// deltas carry the cell edit itself.
struct JournalOp {
  uint8_t type = kAppendOp;
  /// Monotone across the engine's lifetime (1-based); the manifest's
  /// last_op_id refers to these.
  uint64_t op_id = 0;
  // kAppendOp:
  std::vector<std::vector<uint32_t>> conflict_sets;
  core::Valuations valuations;
  // kSellerDeltaOp:
  market::CellDelta delta;
};

/// Encodes one record ([len][type][op_id][payload][crc]). Exposed so
/// fault tests and the crash-recovery smoke tool can write torn records
/// (a prefix of these bytes) on purpose.
std::vector<uint8_t> EncodeJournalRecord(const JournalOp& op);

struct Journal {
  std::vector<JournalOp> ops;
  /// True when the file ended in a torn or corrupt record (the normal
  /// crash signature); `ops` holds everything before it.
  bool torn_tail = false;
};

/// Reads a journal segment, tolerating a torn tail. NotFound when the
/// file does not exist.
Result<Journal> ReadJournal(const std::string& path);

struct CheckpointOptions {
  /// Root directory for checkpoints and journals (created if missing).
  std::string dir;
  /// Take a checkpoint every N publishes (appends). <= 0 disables
  /// periodic checkpoints (journal-only until CheckpointNow).
  int checkpoint_every = 8;
  /// Retained checkpoints (and their journal segments). The newest may
  /// be torn by a crash mid-write; keeping >= 2 guarantees a fallback.
  int keep = 2;
  /// fsync journal appends and checkpoint files. A process crash
  /// (SIGKILL) never loses unsynced renamed/written data — only an OS
  /// crash does — so tests and benches leave this off.
  bool fsync = false;
};

/// Everything Recover() found on disk, ready to feed
/// ShardedPricingEngine::RestoreFromCheckpoint and then
/// CheckpointManager::Attach.
struct RecoveredState {
  /// -1 = no valid checkpoint (shards restore from empty).
  int64_t checkpoint_seq = -1;
  /// The next op id the journal should continue from.
  uint64_t next_op_id = 1;
  uint64_t partition_fingerprint = 0;
  /// One per shard (empty when checkpoint_seq < 0).
  std::vector<ShardState> shards;
  /// Seller deltas the checkpoint subsumes (manifest), in apply order.
  std::vector<market::CellDelta> seller_deltas;
  /// Post-checkpoint ops in op order, already filtered to op_id >
  /// manifest.last_op_id.
  std::vector<JournalOp> ops;
  /// Recovery forensics: newer checkpoints skipped as invalid, and
  /// whether the replayed journal ended in a torn record.
  int corrupt_checkpoints_skipped = 0;
  bool journal_torn_tail = false;
};

/// Scans `dir` for the newest fully-valid checkpoint (manifest present,
/// shard count and whole-file CRCs matching) and the journal segments to
/// replay on top. Corrupt/torn checkpoints fall back to the next-newest;
/// an empty or missing directory recovers to the empty state.
Result<RecoveredState> Recover(const std::string& dir);

/// The engine's write-ahead log + periodic checkpointer. Single-owner:
/// all WriterLog calls arrive under the engine's writer mutex.
///
/// Lifecycle: Recover(dir) → engine.RestoreFromCheckpoint(state, db) →
/// manager.Attach(engine, state) → engine.SetWriterLog(&manager).
/// Attach CHECKPOINTS IMMEDIATELY (sequence = newest found + 1) and
/// starts that checkpoint's fresh journal segment — never appending
/// after a torn tail, and making restart recovery independent of how
/// the previous process died.
class CheckpointManager : public WriterLog {
 public:
  explicit CheckpointManager(CheckpointOptions options);
  ~CheckpointManager() override;

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Binds to an engine the recovered state was already restored into
  /// (pass `recovered == nullptr` for a brand-new directory), writes the
  /// initial checkpoint, and opens its journal. The engine must outlive
  /// the manager (or detach it first) and must not yet have this manager
  /// attached as its WriterLog.
  Status Attach(ShardedPricingEngine* engine,
                const RecoveredState* recovered = nullptr);

  // WriterLog: called by the engine under its writer mutex.
  Status LogAppend(const std::vector<std::vector<uint32_t>>& conflict_sets,
                   const core::Valuations& valuations) override;
  Status LogSellerDelta(const market::CellDelta& delta) override;
  Status OnPublish(ShardedPricingEngine& engine) override;

  /// Takes a checkpoint now. Writer-side: only call when no append /
  /// seller delta is in flight (tests, orderly shutdown).
  Status CheckpointNow();

  struct Stats {
    uint64_t checkpoints_written = 0;
    uint64_t journal_records = 0;
    uint64_t journal_bytes = 0;
    uint64_t last_checkpoint_seq = 0;
  };
  const Stats& stats() const { return stats_; }
  uint64_t next_op_id() const { return next_op_id_; }

 private:
  Status WriteRecord(const std::vector<uint8_t>& record);
  Status WriteCheckpoint(ShardedPricingEngine& engine);
  Status OpenJournal(uint64_t seq);
  void PruneOld();

  CheckpointOptions options_;
  ShardedPricingEngine* engine_ = nullptr;
  int journal_fd_ = -1;
  uint64_t next_op_id_ = 1;
  uint64_t checkpoint_seq_ = 0;
  int publishes_since_checkpoint_ = 0;
  /// Every delta ever logged, in order — baked into each manifest so
  /// recovery can rebuild the database view regardless of which
  /// checkpoint it falls back to.
  std::vector<market::CellDelta> seller_deltas_;
  Stats stats_;
};

}  // namespace qp::serve::persist

#endif  // QP_SERVE_PERSIST_CHECKPOINT_H_
