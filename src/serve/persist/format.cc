#include "serve/persist/format.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "serve/rpc/wire.h"

namespace qp::serve::persist {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendSection(uint32_t tag, const std::vector<uint8_t>& payload,
                   std::vector<uint8_t>* out) {
  rpc::WireWriter w(out);
  w.U32(tag);
  w.U32(static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
  w.U32(Crc32(payload));
}

Status SectionReader::Next(Section* out) {
  if (size_ - pos_ < 8) {
    return Status::Internal("persist: truncated section header");
  }
  rpc::WireReader r(data_ + pos_, 8);
  out->tag = r.U32();
  uint32_t len = r.U32();
  pos_ += 8;
  if (size_ - pos_ < static_cast<size_t>(len) + 4) {
    return Status::Internal("persist: truncated section payload");
  }
  out->payload = data_ + pos_;
  out->size = len;
  pos_ += len;
  rpc::WireReader crc_reader(data_ + pos_, 4);
  uint32_t stored = crc_reader.U32();
  pos_ += 4;
  if (Crc32(out->payload, out->size) != stored) {
    return Status::Internal("persist: section checksum mismatch");
  }
  return Status::OK();
}

void AppendFileHeader(uint32_t file_kind, std::vector<uint8_t>* out) {
  rpc::WireWriter w(out);
  w.U64(kFileMagic);
  w.U32(file_kind);
  w.U32(kFormatVersion);
}

Result<size_t> CheckFileHeader(const std::vector<uint8_t>& data,
                               uint32_t expected_kind) {
  if (data.size() < 16) return Status::Internal("persist: file too short");
  rpc::WireReader r(data.data(), 16);
  if (r.U64() != kFileMagic) {
    return Status::Internal("persist: bad file magic");
  }
  uint32_t kind = r.U32();
  if (kind != expected_kind) {
    return Status::Internal("persist: unexpected file kind " +
                            std::to_string(kind));
  }
  uint32_t version = r.U32();
  if (version != kFormatVersion) {
    return Status::Internal("persist: unsupported format version " +
                            std::to_string(version));
  }
  return size_t{16};
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal("open(" + path +
                            ") failed: " + std::strerror(errno));
  }
  std::vector<uint8_t> out;
  uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return Status::Internal("read(" + path +
                              ") failed: " + std::strerror(errno));
    }
    out.insert(out.end(), buf, buf + n);
  }
  close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& data, bool fsync_file) {
  const std::string tmp = path + ".tmp";
  int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open(" + tmp +
                            ") failed: " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      unlink(tmp.c_str());
      return Status::Internal("write(" + tmp +
                              ") failed: " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_file && fsync(fd) != 0) {
    close(fd);
    unlink(tmp.c_str());
    return Status::Internal("fsync(" + tmp +
                            ") failed: " + std::strerror(errno));
  }
  close(fd);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    unlink(tmp.c_str());
    return Status::Internal("rename(" + tmp + " -> " + path +
                            ") failed: " + std::strerror(errno));
  }
  if (fsync_file) {
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    QP_RETURN_IF_ERROR(SyncDir(dir));
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open dir(" + dir +
                            ") failed: " + std::strerror(errno));
  }
  int rc = fsync(fd);
  close(fd);
  if (rc != 0) {
    return Status::Internal("fsync dir(" + dir +
                            ") failed: " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace qp::serve::persist
