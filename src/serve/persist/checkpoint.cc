#include "serve/persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "serve/persist/format.h"
#include "serve/rpc/wire.h"

namespace qp::serve::persist {
namespace {

namespace fs = std::filesystem;

using rpc::WireReader;
using rpc::WireWriter;

/// Hard cap on one journal record (an append op carries every conflict
/// set of one AppendBuyers call). Larger means a corrupt length prefix,
/// not a real record.
constexpr uint32_t kMaxRecordBytes = 64u << 20;
/// u8 type + u64 op_id: the smallest valid record body.
constexpr uint32_t kMinRecordBytes = 9;

uint32_t ReadU32At(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void PutAppendPayload(WireWriter& w,
                      const std::vector<std::vector<uint32_t>>& conflict_sets,
                      const core::Valuations& valuations) {
  w.U32(static_cast<uint32_t>(conflict_sets.size()));
  for (const std::vector<uint32_t>& edge : conflict_sets) w.U32Vec(edge);
  for (double v : valuations) w.F64(v);
}

/// [u32 len][body][u32 crc(body)] around an encoded record body.
std::vector<uint8_t> WrapRecord(const std::vector<uint8_t>& body) {
  std::vector<uint8_t> out;
  out.reserve(body.size() + 8);
  WireWriter w(&out);
  w.U32(static_cast<uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  w.U32(Crc32(body));
  return out;
}

std::string CheckpointDir(const std::string& dir, uint64_t seq) {
  return (fs::path(dir) / ("checkpoint-" + std::to_string(seq))).string();
}

std::string JournalPath(const std::string& dir, uint64_t seq) {
  return (fs::path(dir) / ("journal-" + std::to_string(seq) + ".log"))
      .string();
}

bool ParseSeq(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Ascending sequence numbers of "<prefix><seq><suffix>"-named entries.
std::vector<uint64_t> ListSeqs(const std::string& dir,
                               const std::string& prefix,
                               const std::string& suffix) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    uint64_t seq = 0;
    if (ParseSeq(name.substr(prefix.size(),
                             name.size() - prefix.size() - suffix.size()),
                 &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

/// Loads checkpoint `seq` in full: manifest, then every shard file
/// validated against the manifest's whole-file CRCs. Any failure means
/// "this checkpoint is not usable" — the caller falls back.
Status TryLoadCheckpoint(const std::string& dir, uint64_t seq,
                         Manifest* manifest, std::vector<ShardState>* shards) {
  const std::string ckdir = CheckpointDir(dir, seq);
  QP_ASSIGN_OR_RETURN(std::vector<uint8_t> manifest_bytes,
                      ReadFile((fs::path(ckdir) / "MANIFEST").string()));
  QP_ASSIGN_OR_RETURN(*manifest, DeserializeManifest(manifest_bytes));
  if (manifest->checkpoint_seq != seq) {
    return Status::Internal("persist: manifest seq mismatch in " + ckdir);
  }
  shards->clear();
  shards->reserve(manifest->num_shards);
  for (uint32_t s = 0; s < manifest->num_shards; ++s) {
    const std::string path =
        (fs::path(ckdir) / ("shard-" + std::to_string(s) + ".ckpt")).string();
    QP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
    if (Crc32(bytes) != manifest->shard_file_crcs[s]) {
      return Status::Internal("persist: shard file checksum mismatch: " +
                              path);
    }
    QP_ASSIGN_OR_RETURN(ShardState state, DeserializeShardState(bytes));
    shards->push_back(std::move(state));
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeJournalRecord(const JournalOp& op) {
  std::vector<uint8_t> body;
  WireWriter w(&body);
  w.U8(op.type);
  w.U64(op.op_id);
  if (op.type == kAppendOp) {
    PutAppendPayload(w, op.conflict_sets, op.valuations);
  } else {
    PutCellDelta(w, op.delta);
  }
  return WrapRecord(body);
}

Result<Journal> ReadJournal(const std::string& path) {
  QP_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadFile(path));
  Journal journal;
  size_t pos = 0;
  while (pos < data.size()) {
    // A record that does not fully parse and checksum is the torn tail:
    // the crash signature, not an error. Everything before it is valid.
    if (data.size() - pos < 4) break;
    const uint32_t len = ReadU32At(data.data() + pos);
    if (len < kMinRecordBytes || len > kMaxRecordBytes ||
        data.size() - pos - 4 < static_cast<size_t>(len) + 4) {
      break;
    }
    const uint8_t* body = data.data() + pos + 4;
    if (Crc32(body, len) != ReadU32At(body + len)) break;
    WireReader r(body, len);
    JournalOp op;
    op.type = r.U8();
    op.op_id = r.U64();
    if (op.type == kAppendOp) {
      uint32_t n = r.U32();
      if (r.ok()) op.conflict_sets.reserve(n);
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        op.conflict_sets.push_back(r.U32Vec());
      }
      if (r.ok()) op.valuations.reserve(n);
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        op.valuations.push_back(r.F64());
      }
    } else if (op.type == kSellerDeltaOp) {
      QP_ASSIGN_OR_RETURN(op.delta, GetCellDelta(r));
    } else {
      // CRC-valid bytes we cannot parse: a format incompatibility, not a
      // torn write. Refuse rather than silently dropping applied ops.
      return Status::Internal("persist: unknown journal op type " +
                              std::to_string(op.type) + " in " + path);
    }
    if (!r.ok() || !r.AtEnd()) {
      return Status::Internal("persist: malformed journal record in " + path);
    }
    journal.ops.push_back(std::move(op));
    pos += 4 + static_cast<size_t>(len) + 4;
  }
  journal.torn_tail = pos != data.size();
  return journal;
}

Result<RecoveredState> Recover(const std::string& dir) {
  RecoveredState out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;

  // Newest fully-valid checkpoint wins; torn/corrupt ones (e.g. a crash
  // before the MANIFEST rename, or a bit-rotted shard file) fall back to
  // the next-newest, whose journal segments are still retained.
  std::vector<uint64_t> seqs = ListSeqs(dir, "checkpoint-", "");
  Manifest manifest;
  uint64_t last_op_id = 0;
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    Status loaded = TryLoadCheckpoint(dir, *it, &manifest, &out.shards);
    if (loaded.ok()) {
      out.checkpoint_seq = static_cast<int64_t>(*it);
      out.partition_fingerprint = manifest.partition_fingerprint;
      out.seller_deltas = std::move(manifest.seller_deltas);
      last_op_id = manifest.last_op_id;
      break;
    }
    out.shards.clear();
    ++out.corrupt_checkpoints_skipped;
  }

  // Replay every journal segment at or after the chosen checkpoint (all
  // of them when none was usable), skipping ops the checkpoint subsumes.
  uint64_t max_op_id = last_op_id;
  for (uint64_t seq : ListSeqs(dir, "journal-", ".log")) {
    if (out.checkpoint_seq >= 0 &&
        seq < static_cast<uint64_t>(out.checkpoint_seq)) {
      continue;
    }
    QP_ASSIGN_OR_RETURN(Journal journal, ReadJournal(JournalPath(dir, seq)));
    if (journal.torn_tail) out.journal_torn_tail = true;
    for (JournalOp& op : journal.ops) {
      max_op_id = std::max(max_op_id, op.op_id);
      if (op.op_id <= last_op_id) continue;
      out.ops.push_back(std::move(op));
    }
  }
  std::stable_sort(out.ops.begin(), out.ops.end(),
                   [](const JournalOp& a, const JournalOp& b) {
                     return a.op_id < b.op_id;
                   });
  out.next_op_id = max_op_id + 1;
  return out;
}

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(std::move(options)) {}

CheckpointManager::~CheckpointManager() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

Status CheckpointManager::Attach(ShardedPricingEngine* engine,
                                 const RecoveredState* recovered) {
  if (engine_ != nullptr) {
    return Status::FailedPrecondition("persist: manager already attached");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status::Internal("persist: cannot create " + options_.dir + ": " +
                            ec.message());
  }
  engine_ = engine;
  if (recovered != nullptr) {
    next_op_id_ = recovered->next_op_id;
    checkpoint_seq_ = recovered->checkpoint_seq < 0
                          ? 0
                          : static_cast<uint64_t>(recovered->checkpoint_seq);
    seller_deltas_ = recovered->seller_deltas;
    for (const JournalOp& op : recovered->ops) {
      if (op.type == kSellerDeltaOp) seller_deltas_.push_back(op.delta);
    }
  }
  // Checkpoint immediately: restart recovery never depends on how the
  // previous process died, and this manager never appends to a journal
  // that may end in a torn record.
  return WriteCheckpoint(*engine_);
}

Status CheckpointManager::LogAppend(
    const std::vector<std::vector<uint32_t>>& conflict_sets,
    const core::Valuations& valuations) {
  std::vector<uint8_t> body;
  WireWriter w(&body);
  w.U8(kAppendOp);
  w.U64(next_op_id_);
  PutAppendPayload(w, conflict_sets, valuations);
  QP_RETURN_IF_ERROR(WriteRecord(WrapRecord(body)));
  ++next_op_id_;
  return Status::OK();
}

Status CheckpointManager::LogSellerDelta(const market::CellDelta& delta) {
  JournalOp op;
  op.type = kSellerDeltaOp;
  op.op_id = next_op_id_;
  op.delta = delta;
  QP_RETURN_IF_ERROR(WriteRecord(EncodeJournalRecord(op)));
  ++next_op_id_;
  seller_deltas_.push_back(delta);
  return Status::OK();
}

Status CheckpointManager::OnPublish(ShardedPricingEngine& engine) {
  if (options_.checkpoint_every <= 0) return Status::OK();
  if (++publishes_since_checkpoint_ < options_.checkpoint_every) {
    return Status::OK();
  }
  return WriteCheckpoint(engine);
}

Status CheckpointManager::CheckpointNow() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("persist: manager not attached");
  }
  return WriteCheckpoint(*engine_);
}

Status CheckpointManager::WriteRecord(const std::vector<uint8_t>& record) {
  if (journal_fd_ < 0) {
    return Status::FailedPrecondition(
        "persist: journal not open (Attach first)");
  }
  size_t written = 0;
  while (written < record.size()) {
    ssize_t n =
        write(journal_fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("persist: journal write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (options_.fsync && fsync(journal_fd_) != 0) {
    return Status::Internal(std::string("persist: journal fsync failed: ") +
                            std::strerror(errno));
  }
  ++stats_.journal_records;
  stats_.journal_bytes += record.size();
  return Status::OK();
}

Status CheckpointManager::OpenJournal(uint64_t seq) {
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  const std::string path = JournalPath(options_.dir, seq);
  int fd =
      open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("persist: open(" + path +
                            ") failed: " + std::strerror(errno));
  }
  journal_fd_ = fd;
  return Status::OK();
}

Status CheckpointManager::WriteCheckpoint(ShardedPricingEngine& engine) {
  const uint64_t seq = checkpoint_seq_ + 1;
  const std::string ckdir = CheckpointDir(options_.dir, seq);
  std::error_code ec;
  fs::create_directories(ckdir, ec);
  if (ec) {
    return Status::Internal("persist: cannot create " + ckdir + ": " +
                            ec.message());
  }
  Manifest manifest;
  manifest.checkpoint_seq = seq;
  manifest.last_op_id = next_op_id_ - 1;
  manifest.num_shards = static_cast<uint32_t>(engine.num_shards());
  manifest.partition_fingerprint = PartitionFingerprint(engine.partition());
  manifest.seller_deltas = seller_deltas_;
  for (int s = 0; s < engine.num_shards(); ++s) {
    ShardState state = engine.shard(s).CaptureState();
    QP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                        SerializeShardState(state));
    QP_RETURN_IF_ERROR(WriteFileAtomic(
        (fs::path(ckdir) / ("shard-" + std::to_string(s) + ".ckpt")).string(),
        bytes, options_.fsync));
    manifest.shard_versions.push_back(state.version);
    manifest.shard_file_crcs.push_back(Crc32(bytes));
  }
  // The MANIFEST rename is the commit point: a crash anywhere before it
  // leaves a directory Recover() skips.
  QP_RETURN_IF_ERROR(
      WriteFileAtomic((fs::path(ckdir) / "MANIFEST").string(),
                      SerializeManifest(manifest), options_.fsync));
  if (options_.fsync) QP_RETURN_IF_ERROR(SyncDir(options_.dir));
  checkpoint_seq_ = seq;
  publishes_since_checkpoint_ = 0;
  ++stats_.checkpoints_written;
  stats_.last_checkpoint_seq = seq;
  QP_RETURN_IF_ERROR(OpenJournal(seq));
  PruneOld();
  return Status::OK();
}

void CheckpointManager::PruneOld() {
  const int keep = std::max(1, options_.keep);
  std::vector<uint64_t> seqs = ListSeqs(options_.dir, "checkpoint-", "");
  if (seqs.size() <= static_cast<size_t>(keep)) return;
  const uint64_t oldest_kept = seqs[seqs.size() - static_cast<size_t>(keep)];
  std::error_code ec;
  for (uint64_t seq : seqs) {
    if (seq >= oldest_kept) break;
    fs::remove_all(CheckpointDir(options_.dir, seq), ec);
  }
  for (uint64_t seq : ListSeqs(options_.dir, "journal-", ".log")) {
    // journal-<seq> holds ops AFTER checkpoint <seq>; segments older
    // than the oldest kept checkpoint can never be replayed again.
    if (seq >= oldest_kept) break;
    fs::remove(JournalPath(options_.dir, seq), ec);
  }
}

}  // namespace qp::serve::persist

namespace qp::serve {

Status ShardedPricingEngine::RestoreFromCheckpoint(
    persist::RecoveredState& state, db::Database* mutable_db) {
  if (state.checkpoint_seq >= 0) {
    if (state.partition_fingerprint !=
        persist::PartitionFingerprint(partition_)) {
      return Status::FailedPrecondition(
          "RestoreFromCheckpoint: checkpoint was taken under a different "
          "support partition");
    }
    if (state.shards.size() != shards_.size()) {
      return Status::FailedPrecondition(
          "RestoreFromCheckpoint: checkpoint has " +
          std::to_string(state.shards.size()) + " shards, engine has " +
          std::to_string(shards_.size()));
    }
    // Warm shard by shard: each shard serves again (TryQuote*/Purchase)
    // the moment its state lands, while the rest answer Unavailable.
    BeginRestore();
    for (size_t s = 0; s < shards_.size(); ++s) {
      QP_RETURN_IF_ERROR(shards_[s]->RestoreState(std::move(state.shards[s])));
      {
        std::lock_guard<std::mutex> lock(writer_mutex_);
        shard_edge_counts_[s] = shards_[s]->hypergraph().num_edges();
      }
      FinishShardRestore(static_cast<int>(s));
    }
  }
  bool needs_db = !state.seller_deltas.empty();
  for (const persist::JournalOp& op : state.ops) {
    if (op.type == persist::kSellerDeltaOp) needs_db = true;
  }
  if (needs_db && mutable_db == nullptr) {
    return Status::InvalidArgument(
        "RestoreFromCheckpoint: recovered seller deltas require the "
        "engine's mutable database");
  }
  for (const market::CellDelta& delta : state.seller_deltas) {
    QP_RETURN_IF_ERROR(ApplySellerDelta(*mutable_db, delta));
  }
  // Journal replay, in op order. Appends carry precomputed GLOBAL
  // conflict sets, so replay routes and reprices exactly as the original
  // calls did — bit-identical books — without re-probing a database
  // whose cells later deltas may have changed.
  for (persist::JournalOp& op : state.ops) {
    switch (op.type) {
      case persist::kAppendOp:
        QP_RETURN_IF_ERROR(AppendBuyersPrecomputed(
            std::move(op.conflict_sets), op.valuations));
        break;
      case persist::kSellerDeltaOp:
        QP_RETURN_IF_ERROR(ApplySellerDelta(*mutable_db, op.delta));
        break;
      default:
        return Status::Internal(
            "RestoreFromCheckpoint: unknown journal op type");
    }
  }
  return Status::OK();
}

}  // namespace qp::serve
