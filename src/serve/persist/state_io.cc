#include "serve/persist/state_io.h"

#include <utility>

#include "core/pricing.h"
#include "serve/persist/format.h"
#include "serve/rpc/wire.h"

namespace qp::serve::persist {
namespace {

using rpc::WireReader;
using rpc::WireWriter;

// Section tags inside a shard file.
constexpr uint32_t kMetaSection = 1;
constexpr uint32_t kEdgesSection = 2;
constexpr uint32_t kValuationsSection = 3;
constexpr uint32_t kRepriceSection = 4;
constexpr uint32_t kBookSection = 5;
// The manifest's single section.
constexpr uint32_t kManifestSection = 1;

// Pricing-function encoding tags (see core/pricing.h).
constexpr uint8_t kNoPricing = 0;
constexpr uint8_t kUniformBundle = 1;
constexpr uint8_t kItemPricing = 2;
constexpr uint8_t kXosPricing = 3;

void PutF64Vec(WireWriter& w, const std::vector<double>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (double x : v) w.F64(x);
}

std::vector<double> GetF64Vec(WireReader& r) {
  uint32_t n = r.U32();
  std::vector<double> v;
  if (!r.ok()) return v;
  v.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.push_back(r.F64());
  return v;
}

Status PutPricing(WireWriter& w, const core::PricingFunction* pricing) {
  if (pricing == nullptr) {
    w.U8(kNoPricing);
    return Status::OK();
  }
  if (auto* ubp = dynamic_cast<const core::UniformBundlePricing*>(pricing)) {
    w.U8(kUniformBundle);
    w.F64(ubp->bundle_price());
    return Status::OK();
  }
  if (auto* item = dynamic_cast<const core::ItemPricing*>(pricing)) {
    w.U8(kItemPricing);
    PutF64Vec(w, item->weights());
    return Status::OK();
  }
  if (auto* xos = dynamic_cast<const core::XosPricing*>(pricing)) {
    w.U8(kXosPricing);
    w.U32(static_cast<uint32_t>(xos->components().size()));
    for (const std::vector<double>& component : xos->components()) {
      PutF64Vec(w, component);
    }
    return Status::OK();
  }
  return Status::Unimplemented(
      "persist: unknown PricingFunction subclass: " + pricing->Describe());
}

Result<std::unique_ptr<core::PricingFunction>> GetPricing(WireReader& r) {
  uint8_t tag = r.U8();
  switch (tag) {
    case kNoPricing:
      return std::unique_ptr<core::PricingFunction>(nullptr);
    case kUniformBundle:
      return std::unique_ptr<core::PricingFunction>(
          std::make_unique<core::UniformBundlePricing>(r.F64()));
    case kItemPricing:
      return std::unique_ptr<core::PricingFunction>(
          std::make_unique<core::ItemPricing>(GetF64Vec(r)));
    case kXosPricing: {
      uint32_t n = r.U32();
      std::vector<std::vector<double>> components;
      if (r.ok()) components.reserve(n);
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        components.push_back(GetF64Vec(r));
      }
      return std::unique_ptr<core::PricingFunction>(
          std::make_unique<core::XosPricing>(std::move(components)));
    }
    default:
      return Status::Internal("persist: unknown pricing tag " +
                              std::to_string(tag));
  }
}

void PutStats(WireWriter& w, const core::RepriceStats& stats) {
  w.U32(static_cast<uint32_t>(stats.lps_solved));
  w.U32(static_cast<uint32_t>(stats.lpip_candidates));
  w.U32(static_cast<uint32_t>(stats.lpip_reused));
  w.U32(static_cast<uint32_t>(stats.lpip_winner_refreshes));
  w.U32(static_cast<uint32_t>(stats.cip_capacities));
  // Wall-clock is not part of the durability contract (versions, revenues,
  // LP counts are). Persisting 0 keeps checkpoint bytes a deterministic
  // function of the logical book, so live state and journal-replayed state
  // serialize bit-identically.
  w.F64(0.0);
}

core::RepriceStats GetStats(WireReader& r) {
  core::RepriceStats stats;
  stats.lps_solved = static_cast<int>(r.U32());
  stats.lpip_candidates = static_cast<int>(r.U32());
  stats.lpip_reused = static_cast<int>(r.U32());
  stats.lpip_winner_refreshes = static_cast<int>(r.U32());
  stats.cip_capacities = static_cast<int>(r.U32());
  stats.seconds = r.F64();
  return stats;
}

std::vector<uint32_t> ToU32(const std::vector<int>& v) {
  std::vector<uint32_t> out;
  out.reserve(v.size());
  for (int x : v) out.push_back(static_cast<uint32_t>(x));
  return out;
}

std::vector<int> ToInt(const std::vector<uint32_t>& v) {
  std::vector<int> out;
  out.reserve(v.size());
  for (uint32_t x : v) out.push_back(static_cast<int>(x));
  return out;
}

}  // namespace

ShardState ShardState::Clone() const {
  ShardState out;
  out.version = version;
  out.total_lps_solved = total_lps_solved;
  out.num_items = num_items;
  out.edges = edges;
  out.valuations = valuations;
  out.reprice = reprice;
  out.results.reserve(results.size());
  for (const core::PricingResult& r : results) out.results.push_back(r.Clone());
  out.book_stats = book_stats;
  return out;
}

Result<std::vector<uint8_t>> SerializeShardState(const ShardState& state) {
  std::vector<uint8_t> out;
  AppendFileHeader(kShardFileKind, &out);

  std::vector<uint8_t> meta;
  {
    WireWriter w(&meta);
    w.U64(state.version);
    w.U32(static_cast<uint32_t>(state.total_lps_solved));
    w.U32(state.num_items);
    w.U32(static_cast<uint32_t>(state.edges.size()));
  }
  AppendSection(kMetaSection, meta, &out);

  std::vector<uint8_t> edges;
  {
    WireWriter w(&edges);
    w.U32(static_cast<uint32_t>(state.edges.size()));
    for (const std::vector<uint32_t>& edge : state.edges) w.U32Vec(edge);
  }
  AppendSection(kEdgesSection, edges, &out);

  std::vector<uint8_t> valuations;
  {
    WireWriter w(&valuations);
    PutF64Vec(w, state.valuations);
  }
  AppendSection(kValuationsSection, valuations, &out);

  std::vector<uint8_t> reprice;
  {
    WireWriter w(&reprice);
    w.U32Vec(state.reprice.classes.class_of_item);
    w.U32Vec(state.reprice.classes.class_size);
    w.U32Vec(state.reprice.classes.class_rep);
    w.U32(static_cast<uint32_t>(state.reprice.classes.edge_classes.size()));
    for (const std::vector<uint32_t>& classes :
         state.reprice.classes.edge_classes) {
      w.U32Vec(classes);
    }
    w.U32Vec(ToU32(state.reprice.order));
    w.U32(static_cast<uint32_t>(state.reprice.lpip.size()));
    for (const core::RepriceState::LpipCandidate& candidate :
         state.reprice.lpip) {
      w.F64(candidate.threshold);
      PutF64Vec(w, candidate.item_weights);
    }
    w.U32(static_cast<uint32_t>(state.reprice.generation));
    PutStats(w, state.reprice.last);
  }
  AppendSection(kRepriceSection, reprice, &out);

  std::vector<uint8_t> book;
  {
    WireWriter w(&book);
    w.U32(static_cast<uint32_t>(state.results.size()));
    for (const core::PricingResult& result : state.results) {
      w.String(result.algorithm);
      QP_RETURN_IF_ERROR(PutPricing(w, result.pricing.get()));
      w.F64(result.revenue);
      w.F64(0.0);  // wall-clock: excluded from the contract, see PutStats
      w.U32(static_cast<uint32_t>(result.lps_solved));
    }
    PutStats(w, state.book_stats);
  }
  AppendSection(kBookSection, book, &out);
  return out;
}

Result<ShardState> DeserializeShardState(const std::vector<uint8_t>& data) {
  QP_ASSIGN_OR_RETURN(size_t offset, CheckFileHeader(data, kShardFileKind));
  SectionReader sections(data.data() + offset, data.size() - offset);
  ShardState state;
  bool saw_meta = false, saw_edges = false, saw_valuations = false,
       saw_reprice = false, saw_book = false;
  while (!sections.AtEnd()) {
    Section section;
    QP_RETURN_IF_ERROR(sections.Next(&section));
    WireReader r(section.payload, section.size);
    switch (section.tag) {
      case kMetaSection: {
        state.version = r.U64();
        state.total_lps_solved = static_cast<int>(r.U32());
        state.num_items = r.U32();
        r.U32();  // num_edges; implied by the edges section
        saw_meta = true;
        break;
      }
      case kEdgesSection: {
        uint32_t n = r.U32();
        if (r.ok()) state.edges.reserve(n);
        for (uint32_t i = 0; i < n && r.ok(); ++i) {
          state.edges.push_back(r.U32Vec());
        }
        saw_edges = true;
        break;
      }
      case kValuationsSection: {
        state.valuations = GetF64Vec(r);
        saw_valuations = true;
        break;
      }
      case kRepriceSection: {
        state.reprice.classes.class_of_item = r.U32Vec();
        state.reprice.classes.class_size = r.U32Vec();
        state.reprice.classes.class_rep = r.U32Vec();
        uint32_t num_edge_classes = r.U32();
        if (r.ok()) {
          state.reprice.classes.edge_classes.reserve(num_edge_classes);
        }
        for (uint32_t i = 0; i < num_edge_classes && r.ok(); ++i) {
          state.reprice.classes.edge_classes.push_back(r.U32Vec());
        }
        state.reprice.order = ToInt(r.U32Vec());
        uint32_t num_candidates = r.U32();
        if (r.ok()) state.reprice.lpip.reserve(num_candidates);
        for (uint32_t i = 0; i < num_candidates && r.ok(); ++i) {
          core::RepriceState::LpipCandidate candidate;
          candidate.threshold = r.F64();
          candidate.item_weights = GetF64Vec(r);
          state.reprice.lpip.push_back(std::move(candidate));
        }
        state.reprice.generation = static_cast<int>(r.U32());
        state.reprice.last = GetStats(r);
        saw_reprice = true;
        break;
      }
      case kBookSection: {
        uint32_t n = r.U32();
        if (r.ok()) state.results.reserve(n);
        for (uint32_t i = 0; i < n && r.ok(); ++i) {
          core::PricingResult result;
          result.algorithm = r.String();
          QP_ASSIGN_OR_RETURN(result.pricing, GetPricing(r));
          result.revenue = r.F64();
          result.seconds = r.F64();
          result.lps_solved = static_cast<int>(r.U32());
          state.results.push_back(std::move(result));
        }
        state.book_stats = GetStats(r);
        saw_book = true;
        break;
      }
      default:
        // Unknown sections from a newer minor writer are skipped (their
        // CRC was still validated).
        break;
    }
    if (!r.ok()) {
      return Status::Internal("persist: malformed shard section " +
                              std::to_string(section.tag));
    }
  }
  if (!(saw_meta && saw_edges && saw_valuations && saw_reprice && saw_book)) {
    return Status::Internal("persist: shard file missing sections");
  }
  if (state.valuations.size() != state.edges.size()) {
    return Status::Internal("persist: shard valuation/edge count mismatch");
  }
  return state;
}

std::vector<uint8_t> SerializeManifest(const Manifest& manifest) {
  std::vector<uint8_t> out;
  AppendFileHeader(kManifestFileKind, &out);
  std::vector<uint8_t> body;
  {
    WireWriter w(&body);
    w.U64(manifest.checkpoint_seq);
    w.U64(manifest.last_op_id);
    w.U32(manifest.num_shards);
    w.U64Vec(manifest.shard_versions);
    w.U64(manifest.partition_fingerprint);
    w.U32Vec(manifest.shard_file_crcs);
    w.U32(static_cast<uint32_t>(manifest.seller_deltas.size()));
    for (const market::CellDelta& delta : manifest.seller_deltas) {
      PutCellDelta(w, delta);
    }
  }
  AppendSection(kManifestSection, body, &out);
  return out;
}

Result<Manifest> DeserializeManifest(const std::vector<uint8_t>& data) {
  QP_ASSIGN_OR_RETURN(size_t offset, CheckFileHeader(data, kManifestFileKind));
  SectionReader sections(data.data() + offset, data.size() - offset);
  Section section;
  QP_RETURN_IF_ERROR(sections.Next(&section));
  if (section.tag != kManifestSection) {
    return Status::Internal("persist: manifest section missing");
  }
  WireReader r(section.payload, section.size);
  Manifest manifest;
  manifest.checkpoint_seq = r.U64();
  manifest.last_op_id = r.U64();
  manifest.num_shards = r.U32();
  manifest.shard_versions = r.U64Vec();
  manifest.partition_fingerprint = r.U64();
  manifest.shard_file_crcs = r.U32Vec();
  uint32_t num_deltas = r.U32();
  if (r.ok()) manifest.seller_deltas.reserve(num_deltas);
  for (uint32_t i = 0; i < num_deltas && r.ok(); ++i) {
    QP_ASSIGN_OR_RETURN(market::CellDelta delta, GetCellDelta(r));
    manifest.seller_deltas.push_back(std::move(delta));
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::Internal("persist: malformed manifest");
  }
  if (manifest.shard_versions.size() != manifest.num_shards ||
      manifest.shard_file_crcs.size() != manifest.num_shards) {
    return Status::Internal("persist: manifest shard-count mismatch");
  }
  return manifest;
}

void PutCellDelta(rpc::WireWriter& w, const market::CellDelta& delta) {
  w.U32(static_cast<uint32_t>(delta.table));
  w.U32(static_cast<uint32_t>(delta.row));
  w.U32(static_cast<uint32_t>(delta.column));
  w.U8(static_cast<uint8_t>(delta.new_value.type()));
  switch (delta.new_value.type()) {
    case db::ValueType::kNull:
      break;
    case db::ValueType::kInt:
      w.U64(static_cast<uint64_t>(delta.new_value.as_int()));
      break;
    case db::ValueType::kDouble:
      w.F64(delta.new_value.as_double());
      break;
    case db::ValueType::kString:
      w.String(delta.new_value.as_string());
      break;
  }
}

Result<market::CellDelta> GetCellDelta(rpc::WireReader& r) {
  market::CellDelta delta;
  delta.table = static_cast<int>(r.U32());
  delta.row = static_cast<int>(r.U32());
  delta.column = static_cast<int>(r.U32());
  uint8_t type = r.U8();
  switch (type) {
    case static_cast<uint8_t>(db::ValueType::kNull):
      delta.new_value = db::Value::Null();
      break;
    case static_cast<uint8_t>(db::ValueType::kInt):
      delta.new_value = db::Value::Int(static_cast<int64_t>(r.U64()));
      break;
    case static_cast<uint8_t>(db::ValueType::kDouble):
      delta.new_value = db::Value::Real(r.F64());
      break;
    case static_cast<uint8_t>(db::ValueType::kString):
      delta.new_value = db::Value::Str(r.String());
      break;
    default:
      return Status::Internal("persist: unknown value type tag " +
                              std::to_string(type));
  }
  if (!r.ok()) return Status::Internal("persist: truncated cell delta");
  return delta;
}

uint64_t PartitionFingerprint(const market::SupportPartition& partition) {
  // FNV-1a over (num_items, item->shard map): the routing-relevant part.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xFFu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(partition.num_items());
  for (int shard : partition.shard_of_item) {
    mix(static_cast<uint64_t>(shard));
  }
  return h;
}

}  // namespace qp::serve::persist
