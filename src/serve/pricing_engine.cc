#include "serve/pricing_engine.h"

#include <optional>
#include <utility>

namespace qp::serve {

namespace {

std::vector<core::PricingResult> CloneResults(
    const std::vector<core::PricingResult>& results) {
  std::vector<core::PricingResult> out;
  out.reserve(results.size());
  for (const core::PricingResult& r : results) out.push_back(r.Clone());
  return out;
}

}  // namespace

PricingEngine::PricingEngine(const db::Database* db,
                             market::SupportSet support,
                             EngineOptions options,
                             common::EpochManager* epochs,
                             db::VersionedDatabase* catalog)
    : db_(db),
      options_(std::move(options)),
      owned_epochs_(epochs == nullptr ? std::make_unique<common::EpochManager>()
                                      : nullptr),
      epochs_(epochs != nullptr ? epochs : owned_epochs_.get()),
      owned_catalog_(catalog == nullptr
                         ? std::make_unique<db::VersionedDatabase>(
                               db, epochs_, options_.fold_every)
                         : nullptr),
      catalog_(catalog != nullptr ? catalog : owned_catalog_.get()),
      builder_(db, std::move(support), options_.build, catalog_),
      chain_(epochs_) {
  // Never let the algorithm layer see stale caller-side precompute: the
  // reprice state owns classes and valuation order for this instance.
  options_.algorithms.lpip.classes = nullptr;
  options_.algorithms.cip.classes = nullptr;
  options_.algorithms.sorted_order = nullptr;
  options_.algorithms.lpip.sorted_order = nullptr;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  RepriceAndPublish(/*first_new_edge=*/0);
}

Status PricingEngine::AppendBuyers(const std::vector<db::BoundQuery>& queries,
                                   const core::Valuations& valuations) {
  if (queries.size() != valuations.size()) {
    return Status::InvalidArgument(
        "AppendBuyers: one valuation per query required");
  }
  if (queries.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  int first_new_edge = builder_.Append(queries);
  valuations_.insert(valuations_.end(), valuations.begin(), valuations.end());
  RepriceAndPublish(first_new_edge);
  return Status::OK();
}

Status PricingEngine::AppendBuyersPrecomputed(
    std::vector<std::vector<uint32_t>> conflict_sets,
    const core::Valuations& valuations) {
  if (conflict_sets.size() != valuations.size()) {
    return Status::InvalidArgument(
        "AppendBuyersPrecomputed: one valuation per conflict set required");
  }
  const uint32_t num_items = builder_.hypergraph().num_items();
  for (const std::vector<uint32_t>& edge : conflict_sets) {
    for (uint32_t item : edge) {
      if (item >= num_items) {
        return Status::InvalidArgument(
            "AppendBuyersPrecomputed: item index outside this engine's "
            "support");
      }
    }
  }
  if (conflict_sets.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  int first_new_edge = builder_.AppendEdges(std::move(conflict_sets));
  valuations_.insert(valuations_.end(), valuations.begin(), valuations.end());
  RepriceAndPublish(first_new_edge);
  return Status::OK();
}

Status PricingEngine::ApplySellerDelta(db::Database& db,
                                       const market::CellDelta& delta) {
  if (&db != db_) {
    return Status::InvalidArgument(
        "ApplySellerDelta: database is not this engine's database");
  }
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Invalidate BEFORE the publish, keyed to the generation the commit is
  // about to create: the cache's floor fence (market/prepared_cache.h)
  // needs that order to shut out in-flight inserts of pre-edit state.
  // Selective: only prepared entries whose SensitiveColumns contain the
  // edited cell can have baked its old value into their probing state.
  // The head read needs no guard — commits and folds are serialized on
  // writer_mutex_.
  const uint64_t next_generation = catalog_->head()->number + 1;
  builder_.InvalidatePreparedQueriesFor(delta, next_generation);
  catalog_->Commit(db, delta.table, delta.row, delta.column, delta.new_value);
  return Status::OK();
}

persist::ShardState PricingEngine::CaptureState() const {
  persist::ShardState state;
  const core::Hypergraph& hypergraph = builder_.hypergraph();
  state.version = version_;
  state.total_lps_solved = total_lps_solved_;
  state.num_items = hypergraph.num_items();
  state.edges.reserve(static_cast<size_t>(hypergraph.num_edges()));
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    state.edges.push_back(hypergraph.edge(e));
  }
  state.valuations = valuations_;
  state.reprice = reprice_;
  // The writer's working copy IS the consolidated view of the published
  // chain (the diff anchor every delta was computed against), so
  // checkpoint bytes stay a pure function of logical state — identical
  // to serializing a materialized snapshot, without folding the chain.
  state.results = CloneResults(working_results_);
  state.book_stats = published_stats_;
  return state;
}

Status PricingEngine::RestoreState(persist::ShardState state) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (builder_.hypergraph().num_edges() != 0 || version_ != 1) {
    return Status::FailedPrecondition(
        "RestoreState: engine already has appended state");
  }
  const uint32_t num_items = builder_.hypergraph().num_items();
  if (state.num_items != num_items) {
    return Status::InvalidArgument(
        "RestoreState: state has " + std::to_string(state.num_items) +
        " items, engine support has " + std::to_string(num_items));
  }
  if (state.valuations.size() != state.edges.size()) {
    return Status::InvalidArgument(
        "RestoreState: one valuation per edge required");
  }
  for (const std::vector<uint32_t>& edge : state.edges) {
    for (uint32_t item : edge) {
      if (item >= num_items) {
        return Status::InvalidArgument(
            "RestoreState: edge item outside this engine's support");
      }
    }
  }
  const int num_edges = static_cast<int>(state.edges.size());
  builder_.AppendEdges(std::move(state.edges));
  valuations_ = std::move(state.valuations);
  reprice_ = std::move(state.reprice);
  version_ = state.version;
  total_lps_solved_ = state.total_lps_solved;
  // The restored book becomes the new consolidated base (the previous
  // chain — the constructor's empty generation — retires through the
  // epoch manager) and the state's results become the working copy.
  published_stats_ = state.book_stats;
  chain_.PublishBase(std::make_unique<const PriceBookSnapshot>(
      version_, state.results, state.book_stats, num_items, num_edges));
  working_results_ = std::move(state.results);
  deltas_since_base_ = 0;
  ++base_publishes_;
  return Status::OK();
}

void PricingEngine::RepriceAndPublish(int first_new_edge) {
  const core::Hypergraph& hypergraph = builder_.hypergraph();
  std::vector<core::PricingResult> results;
  if (options_.incremental_reprice && reprice_.seeded()) {
    results = core::RepriceAfterAppend(hypergraph, valuations_, first_new_edge,
                                       options_.algorithms, reprice_);
  } else {
    results = core::SolveAllWithState(hypergraph, valuations_,
                                      options_.algorithms, reprice_);
  }
  total_lps_solved_ += reprice_.last.lps_solved;
  ++version_;
  PublishResults(std::move(results), reprice_.last);
}

void PricingEngine::PublishResults(std::vector<core::PricingResult> results,
                                   const core::RepriceStats& reprice_stats) {
  const uint32_t cadence =
      options_.consolidate_every == 0 ? 1 : options_.consolidate_every;
  // A base goes out when there is nothing to patch against, when deltas
  // are disabled (cadence 1 = the deep-copy baseline), or when the chain
  // is full — the consolidation trigger.
  bool publish_base =
      !chain_.has_base() || cadence <= 1 || deltas_since_base_ >= cadence;
  std::optional<core::BookDelta> delta;
  if (!publish_base) {
    delta = core::DiffResults(working_results_, results);
    if (!delta.has_value()) {
      publish_base = true;
      ++diff_fallbacks_;
    }
  }
  working_results_ = std::move(results);
  published_stats_ = reprice_stats;
  const core::Hypergraph& hypergraph = builder_.hypergraph();
  if (publish_base) {
    // One deep copy per consolidation (amortized over the chain) instead
    // of one per publish: the snapshot clones the working copy via the
    // move-in constructor.
    chain_.PublishBase(std::make_unique<const PriceBookSnapshot>(
        version_, CloneResults(working_results_), reprice_stats,
        hypergraph.num_items(), hypergraph.num_edges()));
    deltas_since_base_ = 0;
    ++base_publishes_;
  } else {
    chain_.PublishDelta(version_, std::move(*delta), reprice_stats,
                        hypergraph.num_edges());
    ++deltas_since_base_;
    ++delta_publishes_;
  }
}

std::shared_ptr<const PriceBookSnapshot> PricingEngine::snapshot() const {
  common::EpochManager::Guard guard(*epochs_);
  return chain_.view().Materialize();
}

Quote PricingEngine::QuoteBundle(const std::vector<uint32_t>& bundle) const {
  // The quote hot path: one epoch pin (an uncontended slot store — no
  // shared_ptr refcount traffic), one head load, resolve over the chain.
  common::EpochManager::Guard guard(*epochs_);
  BookView view = chain_.view();
  quotes_served_.fetch_add(1, std::memory_order_relaxed);
  return view.QuoteBundle(bundle);
}

std::vector<Quote> PricingEngine::QuoteBatch(
    std::span<const std::vector<uint32_t>> bundles) const {
  // One epoch pin + one stats update for the whole batch: every quote
  // prices against the same generation no matter what the writer does.
  common::EpochManager::Guard guard(*epochs_);
  BookView view = chain_.view();
  quotes_served_.fetch_add(bundles.size(), std::memory_order_relaxed);
  std::vector<Quote> quotes;
  quotes.reserve(bundles.size());
  for (const std::vector<uint32_t>& bundle : bundles) {
    quotes.push_back(view.QuoteBundle(bundle));
  }
  return quotes;
}

PurchaseOutcome PricingEngine::Purchase(const db::BoundQuery& query,
                                        double valuation) {
  PurchaseOutcome outcome;
  outcome.valuation = valuation;
  // Reader side, end to end: the probe pins a catalog generation and
  // reads base+overlay through per-delta overlays, the quote pins an
  // epoch over the published chain, and the sale lands in atomic
  // counters — no writer mutex (and no shared_ptr refcounts) anywhere.
  uint64_t pinned_generation = 0;
  outcome.bundle = builder_.ConflictSetFor(query, &pinned_generation);
  // Staleness sample: committed generations the pinned probe could not
  // see (head may have advanced while the probe ran).
  const uint64_t behind = catalog_->head_generation() - pinned_generation;
  staleness_samples_.fetch_add(1, std::memory_order_relaxed);
  staleness_sum_.fetch_add(behind, std::memory_order_relaxed);
  uint64_t prev_max = staleness_max_.load(std::memory_order_relaxed);
  while (behind > prev_max && !staleness_max_.compare_exchange_weak(
                                  prev_max, behind, std::memory_order_relaxed)) {
  }
  {
    common::EpochManager::Guard guard(*epochs_);
    outcome.quote = chain_.view().QuoteBundle(outcome.bundle);
  }
  quotes_served_.fetch_add(1, std::memory_order_relaxed);
  outcome.accepted = outcome.quote.price <= valuation + core::kSellTolerance;
  purchases_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.accepted) {
    purchases_accepted_.fetch_add(1, std::memory_order_relaxed);
    sale_revenue_.fetch_add(outcome.quote.price, std::memory_order_relaxed);
  }
  return outcome;
}

EngineStats PricingEngine::stats() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  EngineStats out;
  out.version = version_;
  out.num_items = builder_.hypergraph().num_items();
  out.num_edges = builder_.hypergraph().num_edges();
  out.quotes_served = quotes_served_.load(std::memory_order_relaxed);
  out.purchases = purchases_.load(std::memory_order_relaxed);
  out.purchases_accepted = purchases_accepted_.load(std::memory_order_relaxed);
  out.sale_revenue = sale_revenue_.load(std::memory_order_relaxed);
  out.total_lps_solved = total_lps_solved_;
  out.last_reprice = reprice_.last;
  out.build_seconds = builder_.seconds();
  out.conflict = builder_.stats();
  out.incidence = builder_.hypergraph().incidence_maintenance();
  out.prepared = builder_.prepared_stats();
  out.publish.bases = base_publishes_;
  out.publish.deltas = delta_publishes_;
  out.publish.fallbacks = diff_fallbacks_;
  out.publish.chain_length = chain_.chain_length();
  out.epoch = epochs_->stats();
  const db::VersionedDatabase::Stats catalog = catalog_->stats();
  out.catalog.generations_published = catalog.generations_published;
  out.catalog.folds = catalog.folds;
  out.catalog.fold_retries = catalog.fold_retries;
  out.catalog.deltas_pending = catalog.deltas_pending;
  out.catalog.deltas_folded = catalog.deltas_folded;
  out.catalog.fold_nanos = catalog.fold_nanos;
  out.catalog.staleness_samples =
      staleness_samples_.load(std::memory_order_relaxed);
  out.catalog.staleness_sum = staleness_sum_.load(std::memory_order_relaxed);
  out.catalog.staleness_max = staleness_max_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace qp::serve
