#include "serve/pricing_engine.h"

#include <utility>

namespace qp::serve {

PricingEngine::PricingEngine(db::Database* db, market::SupportSet support,
                             EngineOptions options)
    : db_(db),
      options_(std::move(options)),
      builder_(db, std::move(support), options_.build) {
  // Never let the algorithm layer see stale caller-side precompute: the
  // reprice state owns classes and valuation order for this instance.
  options_.algorithms.lpip.classes = nullptr;
  options_.algorithms.cip.classes = nullptr;
  options_.algorithms.sorted_order = nullptr;
  options_.algorithms.lpip.sorted_order = nullptr;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  RepriceAndPublish(/*first_new_edge=*/0);
}

Status PricingEngine::AppendBuyers(const std::vector<db::BoundQuery>& queries,
                                   const core::Valuations& valuations) {
  if (queries.size() != valuations.size()) {
    return Status::InvalidArgument(
        "AppendBuyers: one valuation per query required");
  }
  if (queries.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  int first_new_edge = builder_.Append(queries);
  valuations_.insert(valuations_.end(), valuations.begin(), valuations.end());
  RepriceAndPublish(first_new_edge);
  return Status::OK();
}

void PricingEngine::RepriceAndPublish(int first_new_edge) {
  const core::Hypergraph& hypergraph = builder_.hypergraph();
  std::vector<core::PricingResult> results;
  if (options_.incremental_reprice && reprice_.seeded()) {
    results = core::RepriceAfterAppend(hypergraph, valuations_, first_new_edge,
                                       options_.algorithms, reprice_);
  } else {
    results = core::SolveAllWithState(hypergraph, valuations_,
                                      options_.algorithms, reprice_);
  }
  total_lps_solved_ += reprice_.last.lps_solved;
  ++version_;
  auto next = std::make_shared<const PriceBookSnapshot>(
      version_, results, reprice_.last, hypergraph.num_items(),
      hypergraph.num_edges());
  snapshot_.store(std::move(next), std::memory_order_release);
}

Quote PricingEngine::QuoteBundle(const std::vector<uint32_t>& bundle) const {
  std::shared_ptr<const PriceBookSnapshot> book =
      snapshot_.load(std::memory_order_acquire);
  quotes_served_.fetch_add(1, std::memory_order_relaxed);
  return book->QuoteBundle(bundle);
}

PurchaseOutcome PricingEngine::Purchase(const db::BoundQuery& query,
                                        double valuation) {
  PurchaseOutcome outcome;
  outcome.valuation = valuation;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  outcome.bundle = builder_.ConflictSetFor(query);
  std::shared_ptr<const PriceBookSnapshot> book =
      snapshot_.load(std::memory_order_acquire);
  outcome.quote = book->QuoteBundle(outcome.bundle);
  quotes_served_.fetch_add(1, std::memory_order_relaxed);
  outcome.accepted = outcome.quote.price <= valuation + core::kSellTolerance;
  ++purchases_;
  if (outcome.accepted) {
    ++purchases_accepted_;
    sale_revenue_ += outcome.quote.price;
  }
  return outcome;
}

EngineStats PricingEngine::stats() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  EngineStats out;
  out.version = version_;
  out.num_items = builder_.hypergraph().num_items();
  out.num_edges = builder_.hypergraph().num_edges();
  out.quotes_served = quotes_served_.load(std::memory_order_relaxed);
  out.purchases = purchases_;
  out.purchases_accepted = purchases_accepted_;
  out.sale_revenue = sale_revenue_;
  out.total_lps_solved = total_lps_solved_;
  out.last_reprice = reprice_.last;
  out.build_seconds = builder_.seconds();
  out.incidence = builder_.hypergraph().incidence_maintenance();
  return out;
}

}  // namespace qp::serve
