#include "serve/delta_book.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "core/pricing.h"

namespace qp::serve {

namespace {

// Replicates XosPricing::Price exactly (same iteration order, same
// accumulation, same std::max reduction) so chain resolution stays
// bit-identical to the folded snapshot.
double XosPrice(const std::vector<std::vector<double>>& components,
                const std::vector<uint32_t>& bundle) {
  double best = 0.0;
  for (const std::vector<double>& component : components) {
    double total = 0.0;
    for (uint32_t j : bundle) total += component[j];
    best = std::max(best, total);
  }
  return best;
}

// Binary search over a sparse patch's ascending (item, weight) pairs.
const double* FindSparse(const std::vector<std::pair<uint32_t, double>>& sparse,
                         uint32_t item) {
  auto it = std::lower_bound(
      sparse.begin(), sparse.end(), item,
      [](const std::pair<uint32_t, double>& entry, uint32_t key) {
        return entry.first < key;
      });
  if (it != sparse.end() && it->first == item) return &it->second;
  return nullptr;
}

void DeleteChain(void* node) { delete static_cast<BookNode*>(node); }

}  // namespace

BookView::BookView(const BookNode* head) : head_(head) {
  const BookNode* node = head_;
  while (node->base == nullptr) node = node->next.get();
  base_ = node->base.get();
}

const std::string& BookView::best_algorithm() const {
  // Result order and algorithm names never change across patches, so the
  // base snapshot names every generation's results.
  return base_->results()[static_cast<size_t>(head_->best)].algorithm;
}

double BookView::result_revenue(int i) const {
  // Every patch carries its generation's scalars, so the head answers.
  if (head_->base == nullptr) {
    return head_->delta.patches[static_cast<size_t>(i)].revenue;
  }
  return base_->results()[static_cast<size_t>(i)].revenue;
}

double BookView::ResolveWeight(const BookNode* from, int i,
                               uint32_t item) const {
  for (const BookNode* node = from; node->base == nullptr;
       node = node->next.get()) {
    const core::ResultPatch& patch = node->delta.patches[static_cast<size_t>(i)];
    if (patch.kind == core::ResultPatch::Kind::kSparseWeights) {
      if (const double* weight = FindSparse(patch.sparse, item)) return *weight;
    } else if (patch.kind == core::ResultPatch::Kind::kFullWeights) {
      return patch.weights[item];
    }
  }
  // Structural patches preserve the pricing type (DiffResults contract),
  // so reaching the base under a weight patch means ItemPricing.
  const auto& pricing = static_cast<const core::ItemPricing&>(
      *base_->results()[static_cast<size_t>(i)].pricing);
  return pricing.weights()[item];
}

double BookView::PriceBundle(int i, const std::vector<uint32_t>& bundle) const {
  // Newest structural patch decides how to price; items a sparse weight
  // patch misses resolve deeper down the same chain.
  for (const BookNode* node = head_; node->base == nullptr;
       node = node->next.get()) {
    const core::ResultPatch& patch = node->delta.patches[static_cast<size_t>(i)];
    switch (patch.kind) {
      case core::ResultPatch::Kind::kNone:
        continue;
      case core::ResultPatch::Kind::kBundlePrice:
        // UniformBundlePricing::Price ignores the bundle.
        return patch.bundle_price;
      case core::ResultPatch::Kind::kSparseWeights:
      case core::ResultPatch::Kind::kFullWeights: {
        // ItemPricing::Price: accumulate in bundle order.
        double total = 0.0;
        for (uint32_t j : bundle) total += ResolveWeight(node, i, j);
        return total;
      }
      case core::ResultPatch::Kind::kXos:
        return XosPrice(patch.components, bundle);
    }
  }
  return base_->results()[static_cast<size_t>(i)].pricing->Price(bundle);
}

Quote BookView::QuoteBundle(const std::vector<uint32_t>& bundle) const {
  Quote quote;
  quote.price = PriceBundle(head_->best, bundle);
  quote.version = head_->version;
  quote.algorithm = best_algorithm();
  return quote;
}

std::shared_ptr<const PriceBookSnapshot> BookView::Materialize() const {
  std::vector<core::PricingResult> results;
  results.reserve(base_->results().size());
  for (const core::PricingResult& r : base_->results()) {
    results.push_back(r.Clone());
  }
  // Collect delta nodes newest-first, then replay oldest-to-newest.
  std::vector<const BookNode*> deltas;
  for (const BookNode* node = head_; node->base == nullptr;
       node = node->next.get()) {
    deltas.push_back(node);
  }
  for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
    for (size_t i = 0; i < results.size(); ++i) {
      core::ApplyResultPatch((*it)->delta.patches[i], results[i]);
    }
  }
  return std::make_shared<const PriceBookSnapshot>(
      head_->version, std::move(results), head_->reprice_stats,
      head_->num_items, head_->num_edges);
}

PriceBookChain::~PriceBookChain() {
  delete head_.load(std::memory_order_relaxed);  // owns next recursively
}

void PriceBookChain::PublishBase(
    std::unique_ptr<const PriceBookSnapshot> base) {
  auto* node = new BookNode();
  node->version = base->version();
  node->num_items = base->num_items();
  node->num_edges = base->num_edges();
  node->reprice_stats = base->reprice_stats();
  node->best = base->best_index();
  node->best_revenue = base->best().revenue;
  node->base = std::move(base);
  const BookNode* old =
      head_.exchange(node, std::memory_order_acq_rel);
  if (old != nullptr) {
    // The replaced chain is unreachable from the slot but may still be
    // walked by readers pinned at the current epoch: retire it, advance
    // the epoch, and free whatever no pinned reader can reach.
    epochs_->Retire(const_cast<BookNode*>(old), &DeleteChain);
    epochs_->BumpEpoch();
    epochs_->Reclaim();
  }
}

void PriceBookChain::PublishDelta(uint64_t version, core::BookDelta delta,
                                  const core::RepriceStats& reprice_stats,
                                  int num_edges) {
  const BookNode* old = head_.load(std::memory_order_relaxed);
  auto* node = new BookNode();
  node->version = version;
  node->num_items = old->num_items;
  node->num_edges = num_edges;
  node->reprice_stats = reprice_stats;
  node->best = delta.best;
  node->best_revenue =
      delta.patches[static_cast<size_t>(delta.best)].revenue;
  node->delta = std::move(delta);
  node->chain_length = old->chain_length + 1;
  node->next.reset(old);
  const BookNode* expected = old;
  if (!head_.compare_exchange_strong(expected, node,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
    // Two writers raced the slot: the single-writer contract is broken
    // and the chain is corrupt — don't limp on. Release `next` first so
    // the losing node doesn't delete the live chain.
    (void)node->next.release();
    delete node;
    std::abort();
  }
}

uint32_t PriceBookChain::chain_length() const {
  const BookNode* head = head_.load(std::memory_order_relaxed);
  return head == nullptr ? 0 : head->chain_length;
}

}  // namespace qp::serve
