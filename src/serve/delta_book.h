// Delta-chain price books: Bw-tree-style publishes for the serving
// engine (see docs/delta_chain.md for the design rationale).
//
// The previous publish path deep-copied all six PricingResults into a
// fresh PriceBookSnapshot per generation and retired old snapshots by
// shared_ptr refcount — both dominate under reprice churn. Here the
// writer instead keeps ONE mapping-table slot (an atomic head pointer)
// per book and publishes:
//
//  * a base node — a full consolidated PriceBookSnapshot — every
//    consolidate_every generations, and
//  * a delta node in between: a core::BookDelta (sparse per-result
//    patches) CAS'd onto the current head, linking to the previous node.
//
// Readers pin a common::EpochManager epoch (one uncontended store, no
// refcounts), load the head, and resolve quotes by walking base+deltas:
// per-item weights resolve newest-patch-first, scalar and XOS patches
// newest-wins. Resolution replicates the PricingFunction::Price loops
// operation for operation, so a chain-resolved quote is bit-identical
// to the folded snapshot's quote (asserted by tests/serve/
// delta_book_test.cc and hard-checked in bench/engine_throughput).
//
// Consolidation unlinks the whole previous chain with one head swap and
// hands it to the epoch manager; it frees once every reader pinned at or
// before the retire epoch has left. Nodes own their `next` suffix, so
// freeing a retired head frees its chain.
//
// Threading: PublishBase/PublishDelta are writer-side (one writer per
// chain, the engine's writer mutex). view() is reader-side and lock-free;
// callers MUST hold an EpochManager::Guard on the chain's manager for as
// long as they use the view (and anything borrowed from it).
#ifndef QP_SERVE_DELTA_BOOK_H_
#define QP_SERVE_DELTA_BOOK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "core/reprice.h"
#include "serve/price_book.h"

namespace qp::serve {

/// One link of a delta-chain book. Base nodes (chain terminators) hold a
/// full consolidated snapshot; delta nodes hold a core::BookDelta and
/// own the previous node through `next`. Every node carries its
/// generation's resolved metadata (version, serving pick, reprice cost)
/// so readers only walk the chain for pricing parameters.
struct BookNode {
  std::unique_ptr<const PriceBookSnapshot> base;  // non-null iff terminator
  core::BookDelta delta;                          // delta nodes only
  std::unique_ptr<const BookNode> next;           // owns the older suffix
  uint64_t version = 0;
  uint32_t num_items = 0;
  int num_edges = 0;
  core::RepriceStats reprice_stats;
  /// Serving result (argmax revenue, first wins ties) and its revenue at
  /// this generation, precomputed by the writer.
  int best = -1;
  double best_revenue = 0.0;
  /// Delta nodes above the base (0 for a base node).
  uint32_t chain_length = 0;
};

/// A reader's resolved handle on one generation: the pinned head plus
/// the chain's base, located once at construction. Cheap to construct
/// and copy (two pointers); valid only while the creating Guard is held.
class BookView {
 public:
  BookView() = default;
  explicit BookView(const BookNode* head);

  bool valid() const { return head_ != nullptr; }
  uint64_t version() const { return head_->version; }
  uint32_t num_items() const { return head_->num_items; }
  int num_edges() const { return head_->num_edges; }
  const core::RepriceStats& reprice_stats() const {
    return head_->reprice_stats;
  }
  uint32_t chain_length() const { return head_->chain_length; }

  /// Serving (revenue-maximal) pick at this generation.
  int best_index() const { return head_->best; }
  double best_revenue() const { return head_->best_revenue; }
  const std::string& best_algorithm() const;

  /// Revenue of result `i` at this generation (newest patch wins).
  double result_revenue(int i) const;

  /// Price of `bundle` under result `i`, resolved over base+deltas —
  /// bit-identical to Materialize()->results()[i].pricing->Price(bundle).
  double PriceBundle(int i, const std::vector<uint32_t>& bundle) const;

  /// Quote under the serving pricing; bit-identical to
  /// Materialize()->QuoteBundle(bundle).
  Quote QuoteBundle(const std::vector<uint32_t>& bundle) const;

  /// Folds the chain into a standalone snapshot: base results cloned,
  /// patches replayed oldest-to-newest — bit-identical to the snapshot a
  /// full-copy publish of this generation would have produced. Slow path
  /// (deep copy): persistence capture, tests, compatibility callers.
  std::shared_ptr<const PriceBookSnapshot> Materialize() const;

 private:
  /// Weight of `item` under ItemPricing result `i`, resolving from node
  /// `from` (inclusive) down to the base.
  double ResolveWeight(const BookNode* from, int i, uint32_t item) const;

  const BookNode* head_ = nullptr;
  const PriceBookSnapshot* base_ = nullptr;
};

/// The mapping-table slot: owns the current chain, publishes bases and
/// deltas, retires replaced chains to the epoch manager.
class PriceBookChain {
 public:
  /// `epochs` must outlive the chain and is shared with the readers'
  /// Guards (and, in the sharded engine, with every sibling shard).
  explicit PriceBookChain(common::EpochManager* epochs) : epochs_(epochs) {}

  /// Deletes the live chain. No readers may remain.
  ~PriceBookChain();

  PriceBookChain(const PriceBookChain&) = delete;
  PriceBookChain& operator=(const PriceBookChain&) = delete;

  /// Publishes a consolidated base, retiring the replaced chain (if any)
  /// to the epoch manager, advancing the epoch and reclaiming whatever
  /// no pinned reader can still reach. Writer-side.
  void PublishBase(std::unique_ptr<const PriceBookSnapshot> base);

  /// Publishes one delta record onto the current head (CAS — the single
  /// writer makes it infallible; a failure means the contract was broken
  /// and aborts). Nothing is retired: the chain grows until the next
  /// PublishBase folds it. Writer-side; requires a published base.
  void PublishDelta(uint64_t version, core::BookDelta delta,
                    const core::RepriceStats& reprice_stats, int num_edges);

  /// Current generation's view. Reader-side, lock-free; the caller must
  /// hold an EpochManager::Guard on this chain's manager for the view's
  /// whole lifetime. Invalid (head == nullptr) before the first publish.
  BookView view() const {
    return BookView(head_.load(std::memory_order_acquire));
  }

  bool has_base() const {
    return head_.load(std::memory_order_relaxed) != nullptr;
  }
  /// Delta nodes above the current base. Writer-side.
  uint32_t chain_length() const;

 private:
  common::EpochManager* epochs_;
  std::atomic<const BookNode*> head_{nullptr};
};

}  // namespace qp::serve

#endif  // QP_SERVE_DELTA_BOOK_H_
