// Immutable price-book snapshots (the read side of the serving engine).
//
// A snapshot freezes one pricing generation: every algorithm's
// PricingResult, the generation number, and the reprice cost that
// produced it. Snapshots are the *consolidated* form of the engine's
// delta-chain price book (serve/delta_book.h): the writer publishes a
// full snapshot as the chain's base every consolidate_every generations
// and compact delta records in between; BookView::Materialize folds a
// chain back into a standalone snapshot bit-identical to a cold one.
// Retired bases are reclaimed by common::EpochManager once every pinned
// reader epoch advances — readers no longer bump a shared_ptr per pin.
#ifndef QP_SERVE_PRICE_BOOK_H_
#define QP_SERVE_PRICE_BOOK_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithms.h"
#include "core/reprice.h"

namespace qp::serve {

/// One priced answer, stamped with the generation that produced it.
struct Quote {
  double price = 0.0;
  /// The producing generation. For a single engine this is the snapshot
  /// version; for a merged (sharded) quote it is the SUM of shard
  /// versions — monotone across any shard's publish but NOT collision
  /// free (shard A +1 / shard B -1 sums the same). Version-polling
  /// clients must compare `shard_versions`, which distinct shard
  /// generations can never alias.
  uint64_t version = 0;
  /// Per-shard snapshot versions in ascending shard order; empty for
  /// quotes served by a single (unsharded) engine. The RPC layer stamps
  /// wire responses with this vector.
  std::vector<uint64_t> shard_versions;
  std::string algorithm;  // which pricing served this quote
};

class PriceBookSnapshot {
 public:
  /// Deep-copies `results` (PricingResult::Clone) so the caller — the
  /// engine's writer, a bench harness — retains its own results.
  /// `results` must be non-empty: a book with nothing to serve is a
  /// construction bug, checked here (abort) so best() never indexes out
  /// of bounds.
  PriceBookSnapshot(uint64_t version,
                    const std::vector<core::PricingResult>& results,
                    const core::RepriceStats& reprice_stats,
                    uint32_t num_items, int num_edges)
      : version_(version),
        num_items_(num_items),
        num_edges_(num_edges),
        reprice_stats_(reprice_stats) {
    results_.reserve(results.size());
    for (const core::PricingResult& r : results) results_.push_back(r.Clone());
    Seal();
  }

  /// Move-in overload for callers that already own a private copy (chain
  /// consolidation, restore): no second deep copy. Same non-empty
  /// contract.
  PriceBookSnapshot(uint64_t version, std::vector<core::PricingResult>&& results,
                    const core::RepriceStats& reprice_stats, uint32_t num_items,
                    int num_edges)
      : version_(version),
        num_items_(num_items),
        num_edges_(num_edges),
        reprice_stats_(reprice_stats),
        results_(std::move(results)) {
    Seal();
  }

  uint64_t version() const { return version_; }
  uint32_t num_items() const { return num_items_; }
  int num_edges() const { return num_edges_; }
  /// What the generation cost (lps solved, thresholds reused, seconds).
  const core::RepriceStats& reprice_stats() const { return reprice_stats_; }

  const std::vector<core::PricingResult>& results() const { return results_; }

  /// Result of a named algorithm ("LPIP", "XOS", ...); nullptr if absent.
  const core::PricingResult* Find(const std::string& algorithm) const {
    for (const core::PricingResult& r : results_) {
      if (r.algorithm == algorithm) return &r;
    }
    return nullptr;
  }

  /// Index of the revenue-maximal result (first wins ties, in
  /// RunAllAlgorithms order); always valid — construction rejects empty
  /// result sets.
  int best_index() const { return best_; }

  /// The revenue-maximal result.
  const core::PricingResult& best() const {
    return results_[static_cast<size_t>(best_)];
  }

  /// Price of an arbitrary bundle of items under the serving (= best)
  /// pricing. Const, touches only immutable state: safe from any thread.
  Quote QuoteBundle(const std::vector<uint32_t>& bundle) const {
    const core::PricingResult& serving = best();
    Quote quote;
    quote.price = serving.pricing->Price(bundle);
    quote.version = version_;
    quote.algorithm = serving.algorithm;
    return quote;
  }

 private:
  /// Enforces the non-empty contract and picks the serving result.
  /// best_ >= 0 afterwards, so best() never falls back to a bogus
  /// results_[0] read on an empty vector.
  void Seal() {
    if (results_.empty()) {
      std::fprintf(stderr,
                   "PriceBookSnapshot: constructed with no results (a book "
                   "must have at least one pricing to serve)\n");
      std::abort();
    }
    for (size_t i = 0; i < results_.size(); ++i) {
      if (best_ < 0 ||
          results_[i].revenue > results_[static_cast<size_t>(best_)].revenue) {
        best_ = static_cast<int>(i);
      }
    }
  }

  uint64_t version_;
  uint32_t num_items_;
  int num_edges_;
  core::RepriceStats reprice_stats_;
  std::vector<core::PricingResult> results_;
  int best_ = -1;
};

}  // namespace qp::serve

#endif  // QP_SERVE_PRICE_BOOK_H_
