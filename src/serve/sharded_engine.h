// Sharded pricing engines behind a merging router.
//
// A ShardedPricingEngine owns N serve::PricingEngine shards, one per
// support partition (market::SupportPartitioner). The shards share one
// const db::Database — conflict probing is read-only, so no per-shard
// copies — and each owns a shard-scoped support, hypergraph, valuations
// and price book. Because the partition keeps every conflict edge inside
// one shard, per-shard books compose into the global book additively
// (core/book_merge.h), and the router stays thin:
//
//  * AppendBuyers probes every buyer query ONCE against the global
//    support (the probe cost is identical to the monolithic engine's),
//    routes each conflict set to its owning shard as local item ids, and
//    fans the per-shard appends — conflict-set bookkeeping, incremental
//    reprice, snapshot publish — across shards on common::ThreadPool.
//    Routing is decided serially in arrival order before the fan-out, so
//    published books are bit-identical for every thread count.
//  * Readers pin a MergedBookView: ONE epoch pin (the shards share the
//    router's common::EpochManager) plus one delta-chain head load per
//    shard, all lock-free — no shared_ptr refcounts anywhere on the
//    quote path. A bundle of global item ids splits into per-shard
//    local bundles; its price is the sum of the owning shards' quotes in
//    ascending shard order (the additive cross-shard contract — each
//    shard pricing is monotone subadditive, and the disjoint additive
//    composition preserves both, so the merged pricing stays
//    arbitrage-free). The view's version is the sum of shard versions,
//    which is monotone across any shard's publish.
//  * Purchase is reader-side end to end, exactly like the monolithic
//    engine: global overlay probe (through the router's prepared-query
//    cache), additive quote against a pinned view, atomic sale counters.
//
// Routing policy for conflict sets the partition does not respect (only
// possible for queries outside the partitioner's seed corpus): the edge
// is appended to the shard owning the most of its items (ties to the
// lowest shard id) as that shard's local sub-edge, and
// ShardedEngineStats::cross_shard_appends counts it. Quotes and
// purchases always price the buyer's FULL global conflict set — pricing
// never drops items; only the appended edge (which shapes future books)
// is clipped to the primary shard. Empty conflict sets go to the shard
// with the fewest edges so far (ties to the lowest id).
//
// Parity contract (tests/serve/sharded_engine_test.cc): with one shard
// the router is bit-identical to the monolithic PricingEngine; with many
// shards each shard is bit-identical to a monolithic engine running on
// that shard's sub-instance, for every thread count. Against a single
// monolithic engine on the full instance, per-algorithm revenue sums
// agree within 1e-9 on instances whose per-shard optima align (e.g.
// symmetric copies); in general per-shard optimization can only help, so
// the merged serving book's revenue is >= the monolithic best.
#ifndef QP_SERVE_SHARDED_ENGINE_H_
#define QP_SERVE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/epoch.h"
#include "common/status.h"
#include "db/versioned_database.h"
#include "market/incremental_builder.h"
#include "market/support_partitioner.h"
#include "serve/delta_book.h"
#include "serve/price_book.h"
#include "serve/pricing_engine.h"

namespace qp::serve {

namespace persist {
struct RecoveredState;
}  // namespace persist

class ShardedPricingEngine;

/// Write-ahead durability hook for the sharded engine's writer path
/// (implemented by persist::CheckpointManager). The engine calls
/// LogAppend / LogSellerDelta BEFORE applying an op — a failing log
/// aborts the op, so nothing reaches the books that is not on disk —
/// and OnPublish after the shards published, which is where periodic
/// checkpoints run. All three run under the engine's writer mutex, so
/// implementations may read the shards' writer-side state
/// (PricingEngine::CaptureState) without extra locking but must not
/// call back into engine writer entry points.
class WriterLog {
 public:
  virtual ~WriterLog() = default;
  virtual Status LogAppend(
      const std::vector<std::vector<uint32_t>>& conflict_sets,
      const core::Valuations& valuations) = 0;
  virtual Status LogSellerDelta(const market::CellDelta& delta) = 0;
  virtual Status OnPublish(ShardedPricingEngine& engine) = 0;
};

struct ShardedEngineOptions {
  /// Forwarded to every shard (algorithm options, incremental reprice,
  /// per-shard build options).
  EngineOptions engine;
  /// Threads for the router's own fan-outs: the global probe over buyer
  /// queries in AppendBuyers and the per-shard append/solve/reprice fan.
  /// Books are bit-identical for every value. <= 1 runs inline.
  int num_threads = 1;
};

struct ShardedEngineStats {
  int num_shards = 0;
  /// Sums across shards plus the router's reader-side counters: version
  /// is the sum of shard versions (the merged view's version),
  /// quotes/purchases/sales are router-level, last_reprice is the
  /// field-wise merge of every shard's last generation, conflict/prepared
  /// fold the router's global prober into the shard totals.
  EngineStats merged;
  /// Per-shard engine stats, in shard order.
  std::vector<EngineStats> shards;
  /// Appends whose conflict set crossed shards (clipped to the primary
  /// shard) and quotes priced across more than one shard.
  uint64_t cross_shard_appends = 0;
  uint64_t cross_shard_quotes = 0;
};

/// An immutable view over one pinned generation per shard: a single
/// epoch Guard (the shards share the router's manager) plus one
/// delta-chain BookView per shard. Holding the view keeps every shard's
/// generation alive; `partition` must outlive the view (it lives in the
/// router). Lock-free to obtain and use; move-only (it carries the pin).
class MergedBookView {
 public:
  /// Empty, unpinned view — a slot for ShardedPricingEngine::SnapshotInto
  /// to re-pin in place (the RPC loop's per-tick scratch). Using it
  /// before the first SnapshotInto is undefined.
  MergedBookView() = default;

  MergedBookView(common::EpochManager::Guard guard,
                 std::vector<BookView> views,
                 const market::SupportPartition* partition)
      : guard_(std::move(guard)),
        views_(std::move(views)),
        partition_(partition) {}

  int num_shards() const { return static_cast<int>(views_.size()); }

  /// One shard's book as a standalone consolidated snapshot,
  /// materialized lazily on first access and cached for the view's
  /// lifetime (a deep copy — compatibility / inspection path; quoting
  /// goes through the chain views without copying).
  const PriceBookSnapshot& shard(int s) const;

  /// One shard's zero-copy chain view (valid while this view lives).
  const BookView& shard_view(int s) const {
    return views_[static_cast<size_t>(s)];
  }

  /// Sum of shard versions; monotone across any shard's publish, but NOT
  /// collision free: distinct shard-version vectors can sum identically
  /// (shard A +1 / shard B -0 vs B +1), so a client polling this scalar
  /// can miss a generation change. Poll version_vector() instead when a
  /// missed change matters (the RPC layer stamps responses with it).
  uint64_t version() const;

  /// Per-shard snapshot versions in ascending shard order. Two views over
  /// different shard generations always differ here — the collision-free
  /// form of version().
  std::vector<uint64_t> version_vector() const;

  /// Sum of per-shard best revenues, in shard order — the revenue of the
  /// serving (merged) book.
  double best_revenue() const;

  /// Prices a bundle of *global* item ids additively across the owning
  /// shards (ascending shard order). The quote's algorithm is the owning
  /// shards' serving algorithms merged via core::MergeAlgorithmLabels
  /// (all shards' labels when the bundle touches none). `touched_shards`,
  /// when non-null, receives the number of shards the bundle hit.
  Quote QuoteBundle(const std::vector<uint32_t>& bundle,
                    int* touched_shards = nullptr) const;

  /// Caller-owned working storage for QuoteBundleInto. Every vector is
  /// cleared (capacity retained) per call, so a reused scratch reaches a
  /// high-water mark and then quotes allocation-free.
  struct QuoteScratch {
    std::vector<std::vector<uint32_t>> parts;
    std::vector<double> prices;
    /// Pointers into the pinned views' base snapshots — valid only
    /// within one QuoteBundleInto call.
    std::vector<const std::string*> labels;
  };

  /// QuoteBundle into caller-owned storage: bit-identical output (price,
  /// version, shard_versions, algorithm), zero heap allocation once
  /// `scratch` and `out`'s members have grown to their high-water
  /// capacity — the RPC loop's steady-state quote path. QuoteBundle
  /// delegates here, so the two can never drift.
  void QuoteBundleInto(const std::vector<uint32_t>& bundle,
                       QuoteScratch* scratch, Quote* out,
                       int* touched_shards = nullptr) const;

 private:
  friend class ShardedPricingEngine;  // SnapshotInto re-pins in place

  common::EpochManager::Guard guard_;
  std::vector<BookView> views_;
  const market::SupportPartition* partition_ = nullptr;
  /// Lazy per-shard materialization cache for shard(); indexed like
  /// views_, filled on demand.
  mutable std::vector<std::shared_ptr<const PriceBookSnapshot>> materialized_;
};

class ShardedPricingEngine {
 public:
  /// `db` must outlive the engine and is never written to (every shard
  /// and the router's prober share it read-only). The partition fixes the
  /// shard layout for the engine's lifetime; rebalancing is a ROADMAP
  /// follow-on. Each shard publishes an empty generation immediately, so
  /// readers can quote from construction.
  ShardedPricingEngine(const db::Database* db,
                       market::SupportPartition partition,
                       ShardedEngineOptions options = {});

  /// Writer path: one global probe per query, deterministic routing,
  /// shard-parallel append + reprice + publish. Serialized internally;
  /// safe to call while readers quote/purchase. On a shard failure the
  /// first error in shard order is returned (other shards may have
  /// published).
  Status AppendBuyers(const std::vector<db::BoundQuery>& queries,
                      const core::Valuations& valuations);

  /// Same, for callers that already hold the buyers' conflict sets as
  /// GLOBAL item ids (tests, replay): skips the probe, routes and fans
  /// out identically.
  Status AppendBuyersPrecomputed(
      std::vector<std::vector<uint32_t>> conflict_sets,
      const core::Valuations& valuations);

  /// Pins one snapshot per shard; lock-free.
  MergedBookView snapshot() const;

  /// snapshot() into caller-owned storage: re-pins `view` over the
  /// current shard generations in place (the fresh pin is taken before
  /// the stale one drops, so the view never observes reclaimed memory).
  /// Identical observable state to `*view = snapshot()`, but reusing the
  /// view's vectors — allocation-free after the first call on a given
  /// view. snapshot() delegates here.
  void SnapshotInto(MergedBookView* view) const;

  /// Prices a bundle of global item ids against a freshly pinned view;
  /// lock-free.
  Quote QuoteBundle(const std::vector<uint32_t>& bundle) const;

  /// Prices many global bundles against ONE pinned view (a single
  /// generation across the whole batch); lock-free.
  std::vector<Quote> QuoteBatch(
      std::span<const std::vector<uint32_t>> bundles) const;

  /// Graceful-degradation quoting: like QuoteBundle, but a bundle that
  /// touches a shard still warming after RestoreFromCheckpoint gets
  /// Status::Unavailable instead of a cold (wrongly low) empty-book
  /// price. Identical to QuoteBundle once every shard is warm — the
  /// all-warm fast path is one relaxed atomic load.
  Result<Quote> TryQuoteBundle(const std::vector<uint32_t>& bundle) const;

  /// Batch form: one pinned view for the whole batch; per-bundle
  /// Unavailable for bundles touching cold shards.
  std::vector<Result<Quote>> TryQuoteBatch(
      std::span<const std::vector<uint32_t>> bundles) const;

  /// Caller-owned working storage + results for TryQuoteBatchInto. The
  /// result vectors only ever GROW (elements past the current batch size
  /// are stale, never destroyed), so Quote strings and version vectors
  /// keep their capacity across calls with fluctuating batch sizes.
  struct QuoteBatchScratch {
    MergedBookView view;
    MergedBookView::QuoteScratch split;
    /// quotes[i] is valid iff statuses[i].ok(), for i < batch size.
    std::vector<Quote> quotes;
    std::vector<Status> statuses;
  };

  /// TryQuoteBatch into caller-owned scratch: same pinned-view, warm-gate
  /// and counter semantics, bit-identical quotes. Steady state (all
  /// shards warm, scratch at high-water capacity) performs zero heap
  /// allocations — the RPC loop's per-tick batch path. Bundles touching
  /// cold shards get statuses[i] = Unavailable (that path allocates the
  /// message, as TryQuoteBatch does).
  void TryQuoteBatchInto(std::span<const std::vector<uint32_t>> bundles,
                         QuoteBatchScratch* scratch) const;

  /// Posted-price interaction: global conflict set (read-only overlay
  /// probes through the router's prepared-query cache), additive quote,
  /// atomic sale accounting. The outcome's bundle holds GLOBAL item ids —
  /// identical to the monolithic engine's Purchase for the same query.
  PurchaseOutcome Purchase(const db::BoundQuery& query, double valuation);

  /// Seller edit: logs the delta (write-ahead), selectively invalidates
  /// the router's and every shard's prepared-query cache keyed to the
  /// next catalog generation, and commits ONE new generation to the
  /// router's shared versioned catalog (db must be the engine's
  /// database). Fully concurrent with readers — no quiescence: in-flight
  /// probes keep reading their pinned generation, probes starting after
  /// the commit see the new value, and the catalog folds the overlay
  /// into the base every EngineOptions::fold_every cells, gated on
  /// reader drain (see db/versioned_database.h). The router is the
  /// catalog's single writer: never call a shard's ApplySellerDelta
  /// directly.
  Status ApplySellerDelta(db::Database& db, const market::CellDelta& delta);

  /// The router's shared versioned catalog over its database (one
  /// catalog across every shard and the global prober).
  const db::VersionedDatabase& catalog() const { return catalog_; }

  ShardedEngineStats stats() const;

  // --- durability (serve/persist) --------------------------------------

  /// Attaches (or detaches, with nullptr) the write-ahead log. Taken
  /// under the writer mutex, so an in-flight append either fully
  /// precedes or fully follows the attach. Attach AFTER
  /// RestoreFromCheckpoint — replayed ops must not be re-logged. The log
  /// must outlive the engine or be detached first.
  void SetWriterLog(WriterLog* log);

  /// Restores this engine (fresh: no appends since construction) from a
  /// recovered checkpoint + journal, shard by shard: each shard serves
  /// quotes again (TryQuote*/Purchase) the moment its checkpoint state
  /// lands, while the remaining shards answer Unavailable. Journal
  /// replay then reapplies post-checkpoint ops in op order; replayed
  /// books are bit-identical to the pre-crash ones (versions, revenues,
  /// LP counts). `mutable_db` must be the engine's own database and is
  /// only required when the recovered state carries seller deltas.
  /// Consumes the heavy parts of `state` (shard states, append conflict
  /// sets); the metadata CheckpointManager::Attach reads (op ids,
  /// sequence, seller deltas) stays valid, so pass the same state on.
  Status RestoreFromCheckpoint(persist::RecoveredState& state,
                               db::Database* mutable_db = nullptr);

  /// Restore protocol, public for persist + fault tests: BeginRestore
  /// marks every shard cold (readers get Unavailable from TryQuote*);
  /// FinishShardRestore warms one shard back up.
  void BeginRestore();
  void FinishShardRestore(int s);
  bool shard_ready(int s) const {
    return shard_ready_[static_cast<size_t>(s)].load(
        std::memory_order_acquire);
  }

  /// Router-side reader counters plus the global prober's prepared-cache
  /// stats, gathered WITHOUT the writer mutex — safe from serving paths
  /// that must not block behind an in-flight append (the RPC front-end's
  /// Stats handler). Excludes per-shard engine internals; stats() has
  /// the full merge.
  struct ReaderStats {
    uint64_t quotes_served = 0;
    uint64_t purchases = 0;
    uint64_t purchases_accepted = 0;
    double sale_revenue = 0.0;
    /// TryQuote*/Purchase requests refused because a shard was warming.
    uint64_t unavailable = 0;
    market::PreparedQueryCache::Stats prepared;
    /// Shared versioned-catalog churn counters (the catalog is one
    /// object across shards — reported once) plus the router's own
    /// Purchase staleness samples. Lock-free to gather.
    EngineStats::CatalogStats catalog;
  };
  ReaderStats reader_stats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Writer-side views; do not call concurrently with AppendBuyers.
  PricingEngine& shard(int s) { return *shards_[static_cast<size_t>(s)]; }
  const PricingEngine& shard(int s) const {
    return *shards_[static_cast<size_t>(s)];
  }
  const market::SupportPartition& partition() const { return partition_; }

 private:
  /// Routes global conflict sets to shards and fans the appends out.
  /// Caller holds writer_mutex_.
  Status AppendRouted(std::vector<std::vector<uint32_t>> conflict_sets,
                      const core::Valuations& valuations);

  /// nullptr when every non-empty sub-bundle lands on a warm shard;
  /// otherwise the first cold shard's Unavailable status (also bumps
  /// unavailable_). Reader-side, lock-free.
  Status ReadyFor(const std::vector<uint32_t>& bundle) const;

  /// Shared-catalog counters + router staleness; lock-free.
  EngineStats::CatalogStats catalog_stats() const;

  const db::Database* db_;
  market::SupportPartition partition_;
  ShardedEngineOptions options_;

  /// One epoch manager for the whole router: every shard retires its
  /// chains here and a merged view pins it once. Declared before the
  /// shards so it outlives their chains.
  mutable common::EpochManager epochs_;
  /// One versioned catalog for the whole router: the global prober and
  /// every shard resolve cell reads through it, and ApplySellerDelta is
  /// its single writer. Declared after epochs_ (generations retire
  /// there) and before prober_/shards_ (they probe through it).
  db::VersionedDatabase catalog_;

  mutable std::mutex writer_mutex_;
  /// Global-support prober (never appends edges): AppendBuyers' probe
  /// half and Purchase's conflict sets, with the prepared-query cache.
  market::IncrementalBuilder prober_;
  std::vector<std::unique_ptr<PricingEngine>> shards_;
  /// Edges routed to each shard so far (guarded by writer_mutex_); the
  /// deterministic tie-break for empty conflict sets.
  std::vector<int> shard_edge_counts_;
  /// Write-ahead log hook (guarded by writer_mutex_); nullptr when
  /// durability is off.
  WriterLog* log_ = nullptr;

  /// Per-shard warm/cold flags for the restore protocol. All true from
  /// construction; BeginRestore clears them, FinishShardRestore sets one.
  /// cold_shards_ counts the cold ones so the all-warm serving fast path
  /// is a single relaxed load.
  std::unique_ptr<std::atomic<bool>[]> shard_ready_;
  std::atomic<int> cold_shards_{0};

  mutable std::atomic<uint64_t> quotes_served_{0};
  std::atomic<uint64_t> purchases_{0};
  std::atomic<uint64_t> purchases_accepted_{0};
  std::atomic<double> sale_revenue_{0.0};
  std::atomic<uint64_t> cross_shard_appends_{0};
  mutable std::atomic<uint64_t> cross_shard_quotes_{0};
  mutable std::atomic<uint64_t> unavailable_{0};
  // Router Purchase staleness: head generation minus the probe's pinned
  // generation, sampled per Purchase (reader-side, hence atomic).
  std::atomic<uint64_t> staleness_samples_{0};
  std::atomic<uint64_t> staleness_sum_{0};
  std::atomic<uint64_t> staleness_max_{0};
};

}  // namespace qp::serve

#endif  // QP_SERVE_SHARDED_ENGINE_H_
