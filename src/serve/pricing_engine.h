// Stateful pricing engine: the broker as a long-lived service.
//
// The engine owns one market instance end-to-end — the seller's database
// (borrowed, read-only), the support set, the growing conflict-set
// hypergraph, buyer valuations, and the solved price book — and splits
// its API along the single-writer / many-readers seam:
//
//  * Readers (any thread, lock-free): QuoteBundle / QuoteBatch /
//    Purchase pin an epoch (common::EpochManager — one uncontended store,
//    no shared_ptr refcounts on the hot path), load the delta-chain
//    book's head (serve/delta_book.h) and resolve prices over
//    base+deltas, bit-identical to the consolidated snapshot. Purchase's
//    conflict probing views support deltas through read-only overlays
//    (market/conflict.h), so computing a buyer's bundle never touches
//    the shared database, and sale accounting lands in atomic counters.
//    A pinned reader keeps its generation reachable even while the
//    writer publishes and consolidates past it.
//  * The writer (serialized on an internal mutex): AppendBuyers extends
//    the hypergraph through market::IncrementalBuilder (edge construction
//    fans out over BuildOptions::num_threads; conflict sets are
//    bit-identical for every thread count), repriced either incrementally
//    (core::RepriceAfterAppend — refined classes, reused LPIP thresholds,
//    warm-started CIP bases) or from scratch, then publishes either a
//    compact delta record (core::DiffResults against the writer's
//    working copy) or — every consolidate_every generations — a fresh
//    consolidated base snapshot; replaced chains retire through the
//    epoch manager.
//
// This is the architectural seam later scaling work builds on: sharding
// replicates engines per support partition, batching coalesces
// AppendBuyers calls, and multi-instance serving load-balances the
// read side — none of which touch the algorithm layers again.
#ifndef QP_SERVE_PRICING_ENGINE_H_
#define QP_SERVE_PRICING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/epoch.h"
#include "common/status.h"
#include "core/algorithms.h"
#include "core/hypergraph.h"
#include "core/reprice.h"
#include "db/database.h"
#include "db/query.h"
#include "db/versioned_database.h"
#include "market/incremental_builder.h"
#include "market/support.h"
#include "serve/delta_book.h"
#include "serve/persist/state_io.h"
#include "serve/price_book.h"

namespace qp::serve {

struct EngineOptions {
  /// Forwarded to the pricing layer. classes / sorted_order fields are
  /// ignored (the reprice state owns the shared precompute).
  core::AlgorithmOptions algorithms;
  /// Conflict-set engine selection + build parallelism for hypergraph
  /// construction.
  market::BuildOptions build;
  /// false = every AppendBuyers runs a full cold solve (the baseline the
  /// engine_throughput bench compares against).
  bool incremental_reprice = true;
  /// Delta-chain publish cadence: a consolidated base snapshot is
  /// published when the chain holds this many delta records (so a base
  /// lands every consolidate_every + 1 generations). 1 publishes a full
  /// snapshot every generation — the pre-delta deep-copy behavior, the
  /// baseline the publish-cost bench phases compare against. Books are
  /// bit-identical for every value.
  uint32_t consolidate_every = 8;
  /// Catalog fold cadence (mirrors consolidate_every on the data side):
  /// ApplySellerDelta folds the accumulated overlay into the base
  /// database once it holds this many distinct cells — gated on reader
  /// drain, retried on the next delta when readers are still pinned.
  /// <= 0 never folds (the overlay grows without bound). Logical reads
  /// are identical for every value.
  int fold_every = 32;
};

/// Outcome of a posted-price interaction: the buyer saw `quote` for the
/// conflict set `bundle` and accepted iff price <= valuation (+ the
/// global sell tolerance).
struct PurchaseOutcome {
  Quote quote;
  bool accepted = false;
  double valuation = 0.0;
  std::vector<uint32_t> bundle;
  /// kUnavailable when the bundle touches a shard still warming after a
  /// restore (sharded engine only): the buyer saw no quote and no sale
  /// was recorded. OK otherwise.
  Status status;
};

struct EngineStats {
  uint64_t version = 0;
  uint32_t num_items = 0;
  int num_edges = 0;
  uint64_t quotes_served = 0;
  uint64_t purchases = 0;
  uint64_t purchases_accepted = 0;
  double sale_revenue = 0.0;
  /// Cumulative LPs across all generations, and the last generation's
  /// detailed reprice accounting.
  int total_lps_solved = 0;
  core::RepriceStats last_reprice;
  /// Cumulative conflict-set computation seconds (hypergraph build; the
  /// append path's wall clock, exact — probes run inside the timed
  /// region regardless of build thread count).
  double build_seconds = 0.0;
  /// Probe totals across builds *and* purchases (atomic accumulation:
  /// exact under concurrent Purchase traffic).
  market::ConflictSetEngine::Stats conflict;
  core::Hypergraph::IncidenceMaintenance incidence;
  /// Prepared-query cache counters (repeat Purchase/append queries share
  /// prepared probing state; invalidated — selectively — by
  /// ApplySellerDelta).
  market::PreparedQueryCache::Stats prepared;
  /// Delta-chain publish accounting.
  struct PublishStats {
    /// Consolidated base snapshots published (includes the constructor's
    /// empty generation and diff fallbacks).
    uint64_t bases = 0;
    /// Compact delta records published.
    uint64_t deltas = 0;
    /// Publishes that wanted a delta but fell back to a base because the
    /// generations were not patchable (DiffResults returned nullopt).
    uint64_t fallbacks = 0;
    /// Delta records above the current base (a gauge).
    uint32_t chain_length = 0;
  };
  PublishStats publish;
  /// Reader-pin / reclamation counters of the engine's epoch manager
  /// (shared across shards in the sharded engine). `pins` counts every
  /// reader-side epoch pin — the hot-path replacement for shared_ptr
  /// refcount traffic.
  common::EpochManager::Stats epoch;
  /// Versioned-catalog churn accounting: generation publishes, folds and
  /// their cost (db::VersionedDatabase::Stats), plus quote staleness —
  /// how many committed generations behind the head each Purchase's
  /// pinned probe ran (sampled per Purchase; max is a high-water mark).
  /// In the sharded engine the catalog is shared and reported once.
  struct CatalogStats {
    uint64_t generations_published = 0;
    uint64_t folds = 0;
    uint64_t fold_retries = 0;
    uint64_t deltas_pending = 0;
    uint64_t deltas_folded = 0;
    uint64_t fold_nanos = 0;
    uint64_t staleness_samples = 0;
    uint64_t staleness_sum = 0;
    uint64_t staleness_max = 0;
  };
  CatalogStats catalog;
};

class PricingEngine {
 public:
  /// `db` must outlive the engine and is never written to — conflict
  /// probing reads support deltas through per-probe overlays. The
  /// constructor publishes an empty generation-1 book so readers can
  /// quote immediately. `epochs`, when non-null, is a shared epoch
  /// manager (the sharded router passes one per router so a merged view
  /// pins once for all shards) and must outlive the engine; null gives
  /// the engine its own. `catalog`, when non-null, is a shared versioned
  /// view over `db` (the sharded router owns one across its shards) and
  /// must outlive the engine; null gives the engine its own, built over
  /// `db` with options.fold_every. With a shared catalog, ApplySellerDelta
  /// must be routed through the catalog's single writer (the router) —
  /// per-engine writer mutexes do not serialize against each other.
  PricingEngine(const db::Database* db, market::SupportSet support,
                EngineOptions options = {},
                common::EpochManager* epochs = nullptr,
                db::VersionedDatabase* catalog = nullptr);

  /// Writer path: appends one edge (conflict set) + valuation per buyer
  /// query, reprices, and atomically publishes the next snapshot.
  /// Serialized internally; safe to call while readers quote/purchase.
  Status AppendBuyers(const std::vector<db::BoundQuery>& queries,
                      const core::Valuations& valuations);

  /// Writer path for callers that already hold the buyers' conflict sets
  /// (items are indices into this engine's support): appends one edge +
  /// valuation per buyer without probing, reprices, and publishes. The
  /// sharded router probes once against the global support and feeds each
  /// shard its local sub-edges through this — conflict sets are a pure
  /// function of (db, query, support), so a shard fed precomputed edges
  /// publishes exactly the book it would publish probing them itself.
  Status AppendBuyersPrecomputed(
      std::vector<std::vector<uint32_t>> conflict_sets,
      const core::Valuations& valuations);

  /// Current book as a standalone consolidated snapshot; lock-free.
  /// Materializes the delta chain (a deep copy, bit-identical to the
  /// chain's resolution) — the compatibility / slow path; hot serving
  /// paths quote through the chain without copying. Hold the returned
  /// pointer to keep pricing against one consistent generation.
  std::shared_ptr<const PriceBookSnapshot> snapshot() const;

  /// Current book as a zero-copy chain view. The caller must hold a
  /// Guard on epochs() for the view's whole lifetime (the sharded
  /// router's merged view pins one guard over every shard).
  BookView book_view() const { return chain_.view(); }

  /// The engine's epoch manager (shared or owned).
  common::EpochManager& epochs() const { return *epochs_; }

  /// Price an explicit bundle of items (support-delta indices) against
  /// the current book; lock-free.
  Quote QuoteBundle(const std::vector<uint32_t>& bundle) const;

  /// Price many bundles against *one* pinned snapshot: a single atomic
  /// book load and a single stats update amortized across the batch, and
  /// every quote carries the same generation. Lock-free.
  std::vector<Quote> QuoteBatch(
      std::span<const std::vector<uint32_t>> bundles) const;

  /// Posted-price interaction for a buyer query: computes its conflict
  /// set (read-only overlay probes against the const database — no lock,
  /// any number of threads), quotes it against the current book, and
  /// records the sale atomically if the buyer accepts. Does *not* grow
  /// the market; feed accepted buyers to AppendBuyers when their
  /// valuations should shape future prices.
  PurchaseOutcome Purchase(const db::BoundQuery& query, double valuation);

  /// The seller edits one cell. `db` must be the engine's own database
  /// (mutable access stays with the owner; the engine only checks
  /// identity). Fully concurrent with readers — no quiescence: the delta
  /// is *committed* to the versioned catalog (a new generation whose
  /// overlay carries every unfolded cell, published by one atomic head
  /// store), never written into the base mid-traffic. In-flight probes
  /// keep reading their pinned generation; probes starting after the
  /// commit see the new value. The prepared-query cache is selectively
  /// invalidated (entries whose SensitiveColumns contain the cell)
  /// before the publish, keyed to the new generation. Every fold_every
  /// distinct cells the writer folds the overlay into the base in place,
  /// gated on EpochManager::DrainedAfter so no pinned reader can observe
  /// a half-applied fold; retired generations reclaim through the epoch
  /// manager. Published books and stored conflict sets still describe
  /// the pre-edit market; rebuilding them is the persistence/rebuild
  /// follow-on tracked in ROADMAP.md.
  Status ApplySellerDelta(db::Database& db, const market::CellDelta& delta);

  /// Drops cached prepared probing state without editing data (e.g. the
  /// seller edited the database out of band).
  void InvalidatePreparedQueries() { builder_.InvalidatePreparedQueries(); }

  /// Selective form: drops only prepared entries whose SensitiveColumns
  /// contain the edited cell (the only entries whose prepared state can
  /// depend on it). `next_generation` is the catalog generation the edit
  /// will publish (the sharded router passes it when fanning one delta's
  /// invalidation across shard caches before the single commit).
  void InvalidatePreparedQueriesFor(const market::CellDelta& delta,
                                    uint64_t next_generation = 0) {
    builder_.InvalidatePreparedQueriesFor(delta, next_generation);
  }

  /// The engine's versioned catalog view over its database (shared or
  /// owned). Readers resolve seller-delta edits through it.
  const db::VersionedDatabase& catalog() const { return *catalog_; }

  EngineStats stats() const;

  // --- durability (serve/persist) --------------------------------------

  /// Snapshot of the full writer + published-book state for
  /// checkpointing. Writer-side: call only from the writer (the
  /// CheckpointManager runs inside the engine's publish hook, which
  /// already holds the writer mutex) or while no writer is active.
  persist::ShardState CaptureState() const;

  /// Restores a *fresh* engine (no appends since construction) to a
  /// captured state: hypergraph edges, valuations, reprice state,
  /// generation counters and the published book land exactly as
  /// captured, so subsequent appends reprice through the same state a
  /// never-restarted engine would hold — replayed books are
  /// bit-identical (versions, revenues, LP counts). Fails with
  /// FailedPrecondition on a non-fresh engine and InvalidArgument when
  /// the state's shape does not match this engine's support.
  Status RestoreState(persist::ShardState state);

  /// Writer-side views; do not call concurrently with AppendBuyers.
  const core::Hypergraph& hypergraph() const {
    return builder_.hypergraph();
  }
  const core::Valuations& valuations() const { return valuations_; }
  const core::RepriceState& reprice_state() const { return reprice_; }

 private:
  /// Reprices [first_new_edge, num_edges) and publishes. Caller holds
  /// writer_mutex_.
  void RepriceAndPublish(int first_new_edge);

  /// Publishes `results` as this generation's book: a delta record when
  /// the chain has room and the diff is patchable, a consolidated base
  /// otherwise. Takes ownership of `results` into the writer's working
  /// copy. Caller holds writer_mutex_.
  void PublishResults(std::vector<core::PricingResult> results,
                      const core::RepriceStats& reprice_stats);

  const db::Database* db_;
  EngineOptions options_;

  mutable std::mutex writer_mutex_;
  /// Epoch-based reclamation for retired chains and catalog generations:
  /// owned unless the constructor was handed a shared manager. Declared
  /// before the catalog, builder and chain so their retirements die
  /// first.
  std::unique_ptr<common::EpochManager> owned_epochs_;
  common::EpochManager* epochs_;
  /// Versioned catalog over db_: owned unless the constructor was handed
  /// the router's shared one. Declared before builder_ (which probes
  /// through it).
  std::unique_ptr<db::VersionedDatabase> owned_catalog_;
  db::VersionedDatabase* catalog_;
  market::IncrementalBuilder builder_;
  core::Valuations valuations_;
  core::RepriceState reprice_;
  uint64_t version_ = 0;
  int total_lps_solved_ = 0;

  PriceBookChain chain_;
  /// The writer's full working copy of the published generation: the
  /// diff anchor for delta publishes and the consolidated view persist
  /// captures (bit-identical to folding the chain). Guarded by
  /// writer_mutex_.
  std::vector<core::PricingResult> working_results_;
  /// Reprice stats of the published head (persist capture reads these
  /// instead of materializing the chain). Guarded by writer_mutex_.
  core::RepriceStats published_stats_;
  uint32_t deltas_since_base_ = 0;
  uint64_t base_publishes_ = 0;
  uint64_t delta_publishes_ = 0;
  uint64_t diff_fallbacks_ = 0;

  mutable std::atomic<uint64_t> quotes_served_{0};
  // Reader-side sale accounting: Purchase runs without the writer mutex,
  // so these accumulate atomically (relaxed — they are totals, not
  // synchronization).
  std::atomic<uint64_t> purchases_{0};
  std::atomic<uint64_t> purchases_accepted_{0};
  std::atomic<double> sale_revenue_{0.0};
  // Quote staleness: per-Purchase samples of head generation minus the
  // probe's pinned generation (reader-side, hence atomic).
  std::atomic<uint64_t> staleness_samples_{0};
  std::atomic<uint64_t> staleness_sum_{0};
  std::atomic<uint64_t> staleness_max_{0};
};

}  // namespace qp::serve

#endif  // QP_SERVE_PRICING_ENGINE_H_
