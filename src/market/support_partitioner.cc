#include "market/support_partitioner.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

namespace qp::market {

namespace {

// Union-find with path halving; components keyed by their root.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Unite(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    // Deterministic orientation: the smaller index becomes the root, so
    // component roots are the component minima regardless of edge order.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::vector<std::vector<uint32_t>> SupportPartition::SplitBundle(
    const std::vector<uint32_t>& bundle) const {
  std::vector<std::vector<uint32_t>> parts;
  SplitBundleInto(bundle, &parts);
  return parts;
}

void SupportPartition::SplitBundleInto(
    const std::vector<uint32_t>& bundle,
    std::vector<std::vector<uint32_t>>* parts) const {
  parts->resize(static_cast<size_t>(num_shards));
  for (std::vector<uint32_t>& part : *parts) part.clear();
  for (uint32_t item : bundle) {
    if (item >= shard_of_item.size()) continue;  // reader path: see header
    (*parts)[static_cast<size_t>(shard_of_item[item])].push_back(
        local_of_item[item]);
  }
}

SupportPartition SupportPartitioner::Partition(
    SupportSet support, const std::vector<std::vector<uint32_t>>& seed_edges,
    const PartitionOptions& options) {
  const uint32_t n = static_cast<uint32_t>(support.size());
  SupportPartition out;
  out.num_shards = std::max(
      1, std::min(options.num_shards, static_cast<int>(std::max(1u, n))));
  out.support = std::move(support);
  out.shard_of_item.assign(n, 0);
  out.local_of_item.assign(n, 0);
  out.shard_items.resize(static_cast<size_t>(out.num_shards));
  out.shard_support.resize(static_cast<size_t>(out.num_shards));
  if (n == 0) return out;

  DisjointSets sets(n);
  std::vector<bool> in_edge(n, false);
  for (const std::vector<uint32_t>& edge : seed_edges) {
    uint32_t anchor = n;  // first in-range item of the edge
    for (uint32_t item : edge) {
      if (item >= n) continue;  // ignore out-of-range seed items
      in_edge[item] = true;
      if (anchor == n) {
        anchor = item;
      } else {
        sets.Unite(anchor, item);
      }
    }
  }

  // Components of >= 2 items, as (size, root): root is the component's
  // minimum item, so the sort is a pure function of the component set.
  std::vector<uint32_t> component_size(n, 0);
  for (uint32_t i = 0; i < n; ++i) ++component_size[sets.Find(i)];
  std::vector<std::pair<uint32_t, uint32_t>> components;  // (size, root)
  for (uint32_t i = 0; i < n; ++i) {
    if (sets.Find(i) == i && component_size[i] >= 2) {
      components.emplace_back(component_size[i], i);
    }
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });

  // Greedy LPT balance: each component lands whole on the currently
  // least-loaded shard (ties to the lowest shard id).
  std::vector<uint32_t> load(static_cast<size_t>(out.num_shards), 0);
  auto least_loaded = [&]() {
    int best = 0;
    for (int s = 1; s < out.num_shards; ++s) {
      if (load[static_cast<size_t>(s)] < load[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    return best;
  };
  std::vector<int> shard_of_root(n, -1);
  for (const auto& [size, root] : components) {
    int s = least_loaded();
    shard_of_root[root] = s;
    load[static_cast<size_t>(s)] += size;
  }

  // Residual singletons — items in no seed edge, plus single-item
  // components — spread in ascending item order to even the shard sizes.
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t root = sets.Find(i);
    if (shard_of_root[root] < 0) {
      assert(component_size[root] == 1 || !in_edge[i]);
      int s = least_loaded();
      shard_of_root[root] = s;
      load[static_cast<size_t>(s)] += component_size[root];
    }
    out.shard_of_item[i] = shard_of_root[root];
  }

  // Local ids: position within the shard's ascending global item list.
  for (uint32_t i = 0; i < n; ++i) {
    auto& items = out.shard_items[static_cast<size_t>(out.shard_of_item[i])];
    out.local_of_item[i] = static_cast<uint32_t>(items.size());
    items.push_back(i);
  }
  for (int s = 0; s < out.num_shards; ++s) {
    SupportSet& shard = out.shard_support[static_cast<size_t>(s)];
    shard.reserve(out.shard_items[static_cast<size_t>(s)].size());
    for (uint32_t item : out.shard_items[static_cast<size_t>(s)]) {
      shard.push_back(out.support[item]);
    }
  }
  return out;
}

SupportPartition SupportPartitioner::FromQueries(
    const db::Database* db, SupportSet support,
    const std::vector<db::BoundQuery>& seed_queries, const BuildOptions& build,
    const PartitionOptions& options) {
  IncrementalBuilder prober(db, support, build);
  std::vector<std::vector<uint32_t>> seed_edges =
      prober.ComputeConflictSets(seed_queries);
  SupportPartition partition =
      Partition(std::move(support), seed_edges, options);
  // Hand the probed conflict sets back: the probe is the expensive part,
  // and the router can append the seed workload from them directly.
  partition.seed_edges = std::move(seed_edges);
  return partition;
}

}  // namespace qp::market
