// Queries + support set -> pricing hypergraph (paper Section 3.3).
//
// One-shot convenience over market::IncrementalBuilder — batch drivers
// and tests that never grow the market keep this entry point; anything
// long-lived (the serving engine) holds an IncrementalBuilder instead.
#ifndef QP_MARKET_HYPERGRAPH_BUILDER_H_
#define QP_MARKET_HYPERGRAPH_BUILDER_H_

#include <vector>

#include "core/hypergraph.h"
#include "db/database.h"
#include "db/query.h"
#include "market/conflict.h"
#include "market/incremental_builder.h"
#include "market/support.h"

namespace qp::market {

struct BuildResult {
  core::Hypergraph hypergraph{0};
  /// Per query: sorted support indices in its conflict set (= the edge).
  std::vector<std::vector<uint32_t>> conflict_sets;
  /// Wall-clock seconds spent computing conflict sets (the "hypergraph
  /// construction time" the paper's Tables 4-5 include).
  double seconds = 0.0;
  ConflictSetEngine::Stats stats;
};

/// Builds the hypergraph whose items are support deltas and whose edges are
/// the queries' conflict sets. Read-only over `db` (overlay-based
/// probing); conflict sets are bit-identical for every
/// `options.num_threads`.
BuildResult BuildHypergraph(const db::Database& db,
                            const std::vector<db::BoundQuery>& queries,
                            const SupportSet& support,
                            const BuildOptions& options = {});

}  // namespace qp::market

#endif  // QP_MARKET_HYPERGRAPH_BUILDER_H_
