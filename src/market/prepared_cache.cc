#include "market/prepared_cache.h"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <utility>

namespace qp::market {

std::shared_ptr<const PreparedConflictQuery> PreparedQueryCache::GetOrPrepare(
    const db::BoundQuery& query) const {
  return GetOrPrepare(query, nullptr, 0);
}

std::shared_ptr<const PreparedConflictQuery> PreparedQueryCache::GetOrPrepare(
    const db::BoundQuery& query, const db::DeltaOverlay* overlay,
    uint64_t generation) const {
  // The caller sees only the prepared state; the aliasing shared_ptr
  // keeps the whole entry — including the query copy the prepared state
  // references — alive for as long as any probe holds it (even across a
  // concurrent Invalidate).
  auto view = [](std::shared_ptr<const Entry> entry) {
    const PreparedConflictQuery* prepared = &entry->prepared;
    return std::shared_ptr<const PreparedConflictQuery>(std::move(entry),
                                                        prepared);
  };
  if (query.text.empty()) {
    // Uncacheable (no stable key): prepare fresh, count the miss so the
    // engine's stats still show what a cache key would have saved.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return view(std::make_shared<const Entry>(*db_, query, overlay, generation));
  }
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = entries_.find(query.text);
    if (it != entries_.end()) {
      if (it->second->built_generation <= generation) {
        // Valid at the caller's pinned generation: every sensitive cell
        // the entry baked in is unchanged through `generation`, or an
        // InvalidateCell would have dropped it (invalidate-before-
        // publish + the floor fence below).
        hits_.fetch_add(1, std::memory_order_relaxed);
        it->second->last_used.store(
            use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        return view(it->second);
      }
      // Entry built at a generation the caller cannot see yet (its pin
      // is older than the entry): build transient state against the
      // caller's own overlay and leave the cache untouched.
      lock.unlock();
      stale_bypasses_.fetch_add(1, std::memory_order_relaxed);
      return view(
          std::make_shared<const Entry>(*db_, query, overlay, generation));
    }
  }
  // Prepare outside any lock (construction is the expensive part), then
  // race to insert; the first writer wins and everyone shares its entry.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto entry =
      std::make_shared<const Entry>(*db_, query, overlay, generation);
  entry->last_used.store(use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (catalog_floor_ != generation) {
    // An InvalidateCell (or a commit at another generation) slipped in
    // between our build and this insert: the entry may bake in cells a
    // later generation changed, and the scan that should drop it has
    // already run. Use the state transiently, never insert it.
    lock.unlock();
    stale_bypasses_.fetch_add(1, std::memory_order_relaxed);
    return view(std::move(entry));
  }
  auto [it, inserted] = entries_.emplace(query.text, std::move(entry));
  std::shared_ptr<const PreparedConflictQuery> prepared = view(it->second);
  if (inserted) EvictOverflowLocked();
  return prepared;
}

void PreparedQueryCache::EvictOverflowLocked() const {
  if (max_entries_ == 0) return;
  while (entries_.size() > max_entries_) {
    // O(n) min-scan under the exclusive lock the insert already holds:
    // caps are modest, overflow is the rare path, and the scan keeps hits
    // shared-locked (a linked LRU list would need every hit exclusive).
    auto victim = entries_.begin();
    uint64_t oldest = victim->second->last_used.load(std::memory_order_relaxed);
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      uint64_t used = it->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PreparedQueryCache::Invalidate() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<int, int>> PreparedQueryCache::SortedSensitive(
    const db::BoundQuery& query) {
  std::vector<std::pair<int, int>> sensitive = query.SensitiveColumns();
  std::sort(sensitive.begin(), sensitive.end());
  return sensitive;
}

void PreparedQueryCache::InvalidateCell(int table, int column,
                                        uint64_t next_generation) {
  const std::pair<int, int> cell{table, column};
  uint64_t dropped = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    // Advance the floor in the same critical section as the scan: every
    // insert is ordered against this lock, so an entry present after it
    // was scanned, and an entry built before it can no longer insert.
    if (next_generation > catalog_floor_) catalog_floor_ = next_generation;
    for (auto it = entries_.begin(); it != entries_.end();) {
      const Entry& entry = *it->second;
      if (std::binary_search(entry.sensitive.begin(), entry.sensitive.end(),
                             cell)) {
        it = entries_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  selective_invalidations_.fetch_add(1, std::memory_order_relaxed);
  selective_dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

}  // namespace qp::market
