#include "market/prepared_cache.h"

#include <mutex>
#include <utility>

namespace qp::market {

std::shared_ptr<const PreparedConflictQuery> PreparedQueryCache::GetOrPrepare(
    const db::BoundQuery& query) const {
  // The caller sees only the prepared state; the aliasing shared_ptr
  // keeps the whole entry — including the query copy the prepared state
  // references — alive for as long as any probe holds it (even across a
  // concurrent Invalidate).
  auto view = [](std::shared_ptr<const Entry> entry) {
    const PreparedConflictQuery* prepared = &entry->prepared;
    return std::shared_ptr<const PreparedConflictQuery>(std::move(entry),
                                                        prepared);
  };
  if (query.text.empty()) {
    // Uncacheable (no stable key): prepare fresh, count the miss so the
    // engine's stats still show what a cache key would have saved.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return view(std::make_shared<const Entry>(*db_, query));
  }
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = entries_.find(query.text);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return view(it->second);
    }
  }
  // Prepare outside any lock (construction is the expensive part), then
  // race to insert; the first writer wins and everyone shares its entry.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_shared<const Entry>(*db_, query);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(query.text, std::move(entry));
  return view(it->second);
}

void PreparedQueryCache::Invalidate() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace qp::market
