// Support-set generation (paper Sections 3.2 and 6.1).
//
// Following Qirana, the support S consists of "neighboring" databases:
// instances that differ from the seller's D in a single cell. Each support
// element is stored succinctly as a CellDelta; the conflict engine views a
// delta through a read-only db::DeltaOverlay instead of materializing
// database copies (or mutating D), so probing is concurrency-safe.
#ifndef QP_MARKET_SUPPORT_H_
#define QP_MARKET_SUPPORT_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "db/database.h"

namespace qp::market {

/// One neighboring database: D with a single cell overwritten.
struct CellDelta {
  int table = 0;
  int row = 0;
  int column = 0;
  db::Value new_value;
};

using SupportSet = std::vector<CellDelta>;

struct SupportOptions {
  /// Number of neighboring databases to generate (n = |S|).
  int size = 1000;
  /// Retries per delta before giving up on uniqueness.
  int max_retries = 32;
};

/// Generates `options.size` distinct cell deltas. Perturbed values are
/// drawn from the same column in a different row when possible (keeping
/// the value inside the column's active domain, which is how realistic
/// "neighboring" instances look); falls back to arithmetic / character
/// mutation for constant columns. Deterministic given `rng`.
Result<SupportSet> GenerateSupport(const db::Database& db,
                                   const SupportOptions& options, Rng& rng);

/// Applies the delta, returning the previous cell value (for undo).
/// Conflict probing no longer uses this (probes read through overlays);
/// it remains for the *seller* actually changing data, and for tests that
/// cross-check overlay reads against in-place mutation.
db::Value ApplyDelta(db::Database& db, const CellDelta& delta);

/// Restores a previously applied delta.
void UndoDelta(db::Database& db, const CellDelta& delta, db::Value old_value);

}  // namespace qp::market

#endif  // QP_MARKET_SUPPORT_H_
