#include "market/arbitrage.h"

#include <algorithm>
#include <vector>

#include "common/str_util.h"

namespace qp::market {

namespace {

constexpr double kTol = 1e-9;

std::vector<uint32_t> MaskToBundle(uint32_t mask) {
  std::vector<uint32_t> bundle;
  for (uint32_t j = 0; mask != 0; ++j, mask >>= 1) {
    if (mask & 1u) bundle.push_back(j);
  }
  return bundle;
}

std::string DescribeBundle(const std::vector<uint32_t>& bundle) {
  std::vector<std::string> parts;
  for (uint32_t j : bundle) parts.push_back(std::to_string(j));
  std::string out = "{";
  out += Join(parts, ",");
  out += "}";
  return out;
}

void CheckPair(const core::PricingFunction& pricing,
               const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
               ArbitrageReport& report) {
  std::vector<uint32_t> united;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(united));
  double pa = pricing.Price(a);
  double pb = pricing.Price(b);
  double pu = pricing.Price(united);
  // Monotonicity: A ⊆ A∪B.
  if (report.monotone && pa > pu + kTol * (1.0 + std::abs(pu))) {
    report.monotone = false;
    if (report.violation.empty()) {
      report.violation =
          StrCat("monotonicity: p(", DescribeBundle(a), ")=", pa, " > p(",
                 DescribeBundle(united), ")=", pu);
    }
  }
  // Subadditivity.
  if (report.subadditive && pa + pb + kTol * (1.0 + std::abs(pu)) < pu) {
    report.subadditive = false;
    if (report.violation.empty()) {
      report.violation =
          StrCat("subadditivity: p(", DescribeBundle(a), ")+p(",
                 DescribeBundle(b), ")=", pa + pb, " < p(",
                 DescribeBundle(united), ")=", pu);
    }
  }
}

}  // namespace

ArbitrageReport CheckArbitrageFreeExhaustive(
    const core::PricingFunction& pricing, uint32_t num_items) {
  ArbitrageReport report;
  const uint32_t limit = 1u << num_items;
  std::vector<std::vector<uint32_t>> bundles(limit);
  for (uint32_t mask = 0; mask < limit; ++mask) {
    bundles[mask] = MaskToBundle(mask);
  }
  for (uint32_t a = 0; a < limit; ++a) {
    for (uint32_t b = a; b < limit; ++b) {
      CheckPair(pricing, bundles[a], bundles[b], report);
      if (!report.monotone && !report.subadditive) return report;
    }
  }
  return report;
}

ArbitrageReport CheckArbitrageFree(const core::PricingFunction& pricing,
                                   uint32_t num_items, Rng& rng, int samples) {
  ArbitrageReport report;
  for (int s = 0; s < samples; ++s) {
    std::vector<uint32_t> a, b;
    for (uint32_t j = 0; j < num_items; ++j) {
      double roll = rng.NextDouble();
      if (roll < 0.25) {
        a.push_back(j);
      } else if (roll < 0.5) {
        b.push_back(j);
      } else if (roll < 0.6) {
        a.push_back(j);
        b.push_back(j);
      }
    }
    CheckPair(pricing, a, b, report);
    if (!report.monotone && !report.subadditive) break;
  }
  return report;
}

}  // namespace qp::market
