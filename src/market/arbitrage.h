// Arbitrage-freeness verification (paper Theorem 1).
//
// A pricing function over bundles of support instances is arbitrage-free
// iff it is monotone and subadditive as a set function. The checkers below
// verify those two properties either exhaustively (small n) or by random
// sampling of subset pairs, and are used in tests/property suites on every
// pricing the algorithms produce.
#ifndef QP_MARKET_ARBITRAGE_H_
#define QP_MARKET_ARBITRAGE_H_

#include <string>

#include "common/rng.h"
#include "core/pricing.h"

namespace qp::market {

struct ArbitrageReport {
  bool monotone = true;
  bool subadditive = true;
  /// Human-readable description of the first violation found, if any.
  std::string violation;

  bool arbitrage_free() const { return monotone && subadditive; }
};

/// Exhaustive check over all subset pairs; requires num_items <= 12.
ArbitrageReport CheckArbitrageFreeExhaustive(
    const core::PricingFunction& pricing, uint32_t num_items);

/// Randomized check: samples subset pairs (A, B), testing monotonicity on
/// A vs A∪B and subadditivity p(A) + p(B) >= p(A∪B).
ArbitrageReport CheckArbitrageFree(const core::PricingFunction& pricing,
                                   uint32_t num_items, Rng& rng,
                                   int samples = 2000);

}  // namespace qp::market

#endif  // QP_MARKET_ARBITRAGE_H_
