#include "market/conflict.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "db/delta_overlay.h"
#include "db/eval.h"

namespace qp::market {

namespace {

db::DeltaOverlay OverlayOf(const CellDelta& delta) {
  return db::DeltaOverlay(delta.table, delta.row, delta.column,
                          delta.new_value);
}

}  // namespace

std::vector<uint32_t> NaiveConflictSet(const db::Database& db,
                                       const db::BoundQuery& query,
                                       const SupportSet& support) {
  return NaiveConflictSet(db, query, support, nullptr);
}

std::vector<uint32_t> NaiveConflictSet(const db::Database& db,
                                       const db::BoundQuery& query,
                                       const SupportSet& support,
                                       const db::DeltaOverlay* committed) {
  db::ResultTable base = committed != nullptr
                             ? db::Evaluate(query, db, *committed)
                             : db::Evaluate(query, db);
  std::vector<uint32_t> conflicts;
  for (uint32_t i = 0; i < support.size(); ++i) {
    db::DeltaOverlay probe = OverlayOf(support[i]);
    probe.set_parent(committed);
    db::ResultTable perturbed = db::Evaluate(query, db, probe);
    if (!perturbed.Equals(base)) conflicts.push_back(i);
  }
  return conflicts;
}

namespace {

struct RowLess {
  bool operator()(const db::Row& a, const db::Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

// Per-group exact aggregate accumulators. Only aggregate select items have
// an entry. SUM/AVG arguments are integer columns on this path (double
// accumulators force the fallback engine), so all state is exact and
// supports O(log) add/remove.
struct AggState {
  int64_t count_nonnull = 0;
  int64_t int_sum = 0;
  std::map<db::Value, int64_t> values;  // min / max / count-distinct
};

struct GroupState {
  int64_t row_count = 0;
  std::vector<AggState> aggs;
};

using GroupMap = std::map<db::Row, GroupState, RowLess>;

}  // namespace

// All prepared state is written during construction and only read by
// Probe, which keeps every per-probe intermediate (patched rows, affected
// group copies) on its own stack — the concurrency contract of
// PreparedConflictQuery reduces to "construction happens-before probing".
class PreparedConflictQuery::Impl {
 public:
  Impl(const db::Database& db, const db::BoundQuery& query,
       const db::DeltaOverlay* build_overlay)
      : db_(db), query_(query) {
    Classify();
    if (fallback_) {
      base_result_ = build_overlay != nullptr
                         ? db::Evaluate(query_, db_, *build_overlay)
                         : db::Evaluate(query_, db_);
      return;
    }
    BuildSensitivity();
    if (two_tables_) BuildJoinIndexes(build_overlay);
    if (grouped_) {
      BuildGroups(build_overlay);
    } else {
      BuildProjections(build_overlay);
    }
  }

  bool is_fallback() const { return fallback_; }

  bool Probe(const CellDelta& delta, ConflictStats& stats,
             const db::DeltaOverlay* committed) const {
    if (fallback_) {
      ++stats.probes;
      db::DeltaOverlay probe = OverlayOf(delta);
      probe.set_parent(committed);
      db::ResultTable perturbed = db::Evaluate(query_, db_, probe);
      return !perturbed.Equals(base_result_);
    }
    int slot = SlotOfTable(delta.table);
    if (slot < 0 || !IsSensitive(slot, delta.column)) {
      ++stats.pruned;
      return false;
    }
    ++stats.probes;
    return grouped_ ? ProbeGrouped(delta, slot, committed)
                    : ProbeProjection(delta, slot, committed);
  }

 private:
  // --- classification ----------------------------------------------------
  void Classify() {
    two_tables_ = query_.table_indices.size() == 2;
    grouped_ = query_.has_aggregates() || !query_.group_by.empty();
    fallback_ = query_.limit >= 0;
    for (const db::SelectItem& item : query_.select) {
      if (item.kind != db::SelectItem::Kind::kAggregate) continue;
      if ((item.agg == db::AggFunc::kSum || item.agg == db::AggFunc::kAvg) &&
          item.column >= 0) {
        auto [table, col] = query_.FlatToTableColumn(item.column);
        if (db_.table(table).schema().column(col).type ==
            db::ValueType::kDouble) {
          fallback_ = true;  // float accumulation: use the reference engine
        }
      }
    }
  }

  int SlotOfTable(int db_table) const {
    if (query_.table_indices[0] == db_table) return 0;
    if (two_tables_ && query_.table_indices[1] == db_table) return 1;
    return -1;
  }

  bool IsSensitive(int slot, int column) const {
    const std::vector<char>& mask = sensitive_[slot];
    return column < static_cast<int>(mask.size()) && mask[column];
  }

  void BuildSensitivity() {
    sensitive_[0].assign(
        db_.table(query_.table_indices[0]).schema().num_columns(), 0);
    if (two_tables_) {
      sensitive_[1].assign(
          db_.table(query_.table_indices[1]).schema().num_columns(), 0);
    }
    for (auto [table, col] : query_.SensitiveColumns()) {
      int slot = SlotOfTable(table);
      sensitive_[slot][col] = 1;
      needed_[slot].push_back(col);
    }
    std::sort(needed_[0].begin(), needed_[0].end());
    std::sort(needed_[1].begin(), needed_[1].end());
  }

  // --- shared row machinery ----------------------------------------------
  const db::Table& TableOfSlot(int slot) const {
    return db_.table(query_.table_indices[slot]);
  }

  // Overlay-aware cell read for slot `slot`. Never loads a base cell the
  // overlay shadows (fold safety, see db/delta_overlay.h).
  const db::Value& CellAt(const db::DeltaOverlay* overlay, int slot, int row,
                          int col) const {
    if (overlay != nullptr) {
      const db::Value* patched =
          overlay->Find(query_.table_indices[slot], row, col);
      if (patched != nullptr) return *patched;
    }
    return TableOfSlot(slot).cell(row, col);
  }

  // Overlay-aware full-row read; `scratch` backs the patched copy when
  // the overlay touches the row.
  const db::Row& RowAt(const db::DeltaOverlay* overlay, int slot, int row,
                       db::Row& scratch) const {
    const int table = query_.table_indices[slot];
    if (overlay != nullptr && overlay->TouchesRow(table, row)) {
      scratch = overlay->PatchedRow(db_, table, row);
      return scratch;
    }
    return TableOfSlot(slot).row(row);
  }

  void BuildJoinIndexes(const db::DeltaOverlay* bo) {
    const db::Table& t0 = TableOfSlot(0);
    const db::Table& t1 = TableOfSlot(1);
    join_col0_ = query_.join_left;  // table 0 columns start at flat 0
    join_col1_ = query_.join_right - query_.column_offsets[1];
    for (int r = 0; r < t0.num_rows(); ++r) {
      index0_[CellAt(bo, 0, r, join_col0_).Hash()].push_back(r);
    }
    for (int r = 0; r < t1.num_rows(); ++r) {
      index1_[CellAt(bo, 1, r, join_col1_).Hash()].push_back(r);
    }
  }

  // The probed row of slot `slot`, read through the committed overlay
  // `co` with `delta` patched on top when given. Self-joins are rejected
  // at validation, so a delta patches exactly one slot and join partners
  // read base+committed only.
  // Only the query's sensitive columns are copied — the full set the
  // predicate / projection / grouping / join machinery can read — so a
  // probe on a wide table costs O(columns the query touches), not
  // O(table width); the rest stay NULL and are never inspected.
  db::Row ProbedRow(int row, int slot, const CellDelta* delta,
                    const db::DeltaOverlay* co) const {
    const db::Row& base = TableOfSlot(slot).row(row);
    db::Row r(base.size());
    const int table = query_.table_indices[slot];
    for (int c : needed_[slot]) {
      const db::Value* patched =
          co != nullptr ? co->Find(table, row, c) : nullptr;
      r[static_cast<size_t>(c)] = patched != nullptr ? *patched : base[c];
    }
    if (delta != nullptr) r[static_cast<size_t>(delta->column)] = delta->new_value;
    return r;
  }

  // Joined + filtered input rows involving row `row` of table `slot`,
  // evaluated against base+`co` with `delta` (when non-null) overlaid on
  // that row. Purely functional: no shared state is touched.
  std::vector<db::Row> AffectedInputRows(int row, int slot,
                                         const CellDelta* delta,
                                         const db::DeltaOverlay* co) const {
    std::vector<db::Row> inputs;
    if (!two_tables_) {
      db::Row r = ProbedRow(row, /*slot=*/0, delta, co);
      if (query_.predicate == nullptr || query_.predicate->EvaluateBool(r)) {
        inputs.push_back(std::move(r));
      }
      return inputs;
    }
    db::Row scratch;
    if (slot == 0) {
      db::Row left = ProbedRow(row, 0, delta, co);
      const db::Value& key = left[join_col0_];
      auto it = index1_.find(key.Hash());
      if (it == index1_.end()) return inputs;
      for (int r1 : it->second) {
        if (key.Compare(CellAt(co, 1, r1, join_col1_)) != 0) continue;
        db::Row joined = left;
        const db::Row& right = RowAt(co, 1, r1, scratch);
        joined.insert(joined.end(), right.begin(), right.end());
        if (query_.predicate == nullptr ||
            query_.predicate->EvaluateBool(joined)) {
          inputs.push_back(std::move(joined));
        }
      }
    } else {
      db::Row right = ProbedRow(row, 1, delta, co);
      const db::Value& key = right[join_col1_];
      auto it = index0_.find(key.Hash());
      if (it == index0_.end()) return inputs;
      for (int r0 : it->second) {
        if (key.Compare(CellAt(co, 0, r0, join_col0_)) != 0) continue;
        db::Row joined = RowAt(co, 0, r0, scratch);
        joined.insert(joined.end(), right.begin(), right.end());
        if (query_.predicate == nullptr ||
            query_.predicate->EvaluateBool(joined)) {
          inputs.push_back(std::move(joined));
        }
      }
    }
    return inputs;
  }

  // --- projection (non-aggregate) mode -------------------------------------
  void BuildProjections(const db::DeltaOverlay* bo) {
    if (!two_tables_) {
      const db::Table& t0 = TableOfSlot(0);
      row_present_.assign(t0.num_rows(), 0);
      row_hash_.assign(t0.num_rows(), 0);
      db::Row scratch;
      for (int r = 0; r < t0.num_rows(); ++r) {
        const db::Row& row = RowAt(bo, 0, r, scratch);
        if (query_.predicate != nullptr &&
            !query_.predicate->EvaluateBool(row)) {
          continue;
        }
        row_present_[r] = 1;
        row_hash_[r] =
            db::ResultTable::RowHash(db::ProjectInputRow(query_, row));
        if (query_.distinct) tuple_counts_[row_hash_[r]]++;
      }
      return;
    }
    if (query_.distinct) {
      const std::vector<db::Row> gathered =
          bo != nullptr ? db::GatherInputRows(query_, db_, *bo)
                        : db::GatherInputRows(query_, db_);
      for (const db::Row& input : gathered) {
        tuple_counts_[db::ResultTable::RowHash(
            db::ProjectInputRow(query_, input))]++;
      }
    }
  }

  bool ProbeProjection(const CellDelta& delta, int slot,
                       const db::DeltaOverlay* co) const {
    if (!two_tables_) {
      bool old_present = row_present_[delta.row];
      uint64_t old_hash = row_hash_[delta.row];
      db::Row patched = ProbedRow(delta.row, 0, &delta, co);
      bool new_present = query_.predicate == nullptr ||
                         query_.predicate->EvaluateBool(patched);
      uint64_t new_hash =
          new_present
              ? db::ResultTable::RowHash(db::ProjectInputRow(query_, patched))
              : 0;
      std::vector<uint64_t> removed, added;
      if (old_present) removed.push_back(old_hash);
      if (new_present) added.push_back(new_hash);
      return ContributionsDiffer(removed, added);
    }
    std::vector<db::Row> old_inputs =
        AffectedInputRows(delta.row, slot, nullptr, co);
    std::vector<db::Row> new_inputs =
        AffectedInputRows(delta.row, slot, &delta, co);
    std::vector<uint64_t> removed, added;
    removed.reserve(old_inputs.size());
    added.reserve(new_inputs.size());
    for (const db::Row& r : old_inputs) {
      removed.push_back(db::ResultTable::RowHash(db::ProjectInputRow(query_, r)));
    }
    for (const db::Row& r : new_inputs) {
      added.push_back(db::ResultTable::RowHash(db::ProjectInputRow(query_, r)));
    }
    return ContributionsDiffer(removed, added);
  }

  // Whether swapping `removed` for `added` changes the visible output —
  // multiset semantics normally, set semantics under DISTINCT.
  bool ContributionsDiffer(std::vector<uint64_t>& removed,
                           std::vector<uint64_t>& added) const {
    if (!query_.distinct) {
      std::sort(removed.begin(), removed.end());
      std::sort(added.begin(), added.end());
      return removed != added;
    }
    std::unordered_map<uint64_t, int64_t> net;
    for (uint64_t h : removed) net[h]--;
    for (uint64_t h : added) net[h]++;
    for (const auto& [hash, change] : net) {
      if (change == 0) continue;
      auto it = tuple_counts_.find(hash);
      int64_t current = it == tuple_counts_.end() ? 0 : it->second;
      if ((current > 0) != (current + change > 0)) return true;
    }
    return false;
  }

  // --- aggregate mode ------------------------------------------------------
  db::Row GroupKeyOf(const db::Row& input) const {
    db::Row key;
    key.reserve(query_.group_by.size());
    for (int c : query_.group_by) key.push_back(input[c]);
    return key;
  }

  void BuildGroups(const db::DeltaOverlay* bo) {
    // Aggregate select items, in select order.
    for (size_t i = 0; i < query_.select.size(); ++i) {
      const db::SelectItem& item = query_.select[i];
      if (item.kind == db::SelectItem::Kind::kAggregate) {
        agg_items_.push_back(static_cast<int>(i));
      } else if (item.kind == db::SelectItem::Kind::kColumn) {
        auto it = std::find(query_.group_by.begin(), query_.group_by.end(),
                            item.column);
        select_key_index_.push_back(
            static_cast<int>(it - query_.group_by.begin()));
      }
    }
    if (query_.group_by.empty()) {
      GroupFor(groups_, db::Row{});  // the global group exists even when empty
    }
    const std::vector<db::Row> gathered =
        bo != nullptr ? db::GatherInputRows(query_, db_, *bo)
                      : db::GatherInputRows(query_, db_);
    for (const db::Row& input : gathered) {
      UpdateGroup(groups_, input, +1);
    }
  }

  GroupState& GroupFor(GroupMap& groups, const db::Row& key) const {
    GroupState& g = groups[key];
    if (g.aggs.empty() && !agg_items_.empty()) {
      g.aggs.resize(agg_items_.size());
    }
    return g;
  }

  void UpdateGroup(GroupMap& groups, const db::Row& input,
                   int64_t direction) const {
    GroupState& g = GroupFor(groups, GroupKeyOf(input));
    g.row_count += direction;
    for (size_t a = 0; a < agg_items_.size(); ++a) {
      const db::SelectItem& item = query_.select[agg_items_[a]];
      if (item.column < 0) continue;  // COUNT(*) uses row_count
      const db::Value& v = input[item.column];
      if (v.is_null()) continue;
      AggState& state = g.aggs[a];
      state.count_nonnull += direction;
      switch (item.agg) {
        case db::AggFunc::kSum:
        case db::AggFunc::kAvg:
          state.int_sum += direction * v.as_int();
          break;
        case db::AggFunc::kMin:
        case db::AggFunc::kMax:
        case db::AggFunc::kCountDistinct: {
          int64_t& count = state.values[v];
          count += direction;
          if (count == 0) state.values.erase(v);
          break;
        }
        case db::AggFunc::kCount:
          break;
      }
    }
  }

  // Output row of one group, mirroring db::ComputeAggregate exactly.
  db::Row GroupOutput(const db::Row& key, const GroupState& g) const {
    db::Row out;
    out.reserve(query_.select.size());
    size_t agg_idx = 0;
    size_t key_idx = 0;
    for (const db::SelectItem& item : query_.select) {
      switch (item.kind) {
        case db::SelectItem::Kind::kColumn:
          out.push_back(key[select_key_index_[key_idx++]]);
          break;
        case db::SelectItem::Kind::kLiteral:
          out.push_back(item.literal);
          break;
        case db::SelectItem::Kind::kAggregate: {
          const AggState& state = g.aggs[agg_idx++];
          switch (item.agg) {
            case db::AggFunc::kCount:
              out.push_back(db::Value::Int(
                  item.column < 0 ? g.row_count : state.count_nonnull));
              break;
            case db::AggFunc::kCountDistinct:
              out.push_back(
                  db::Value::Int(static_cast<int64_t>(state.values.size())));
              break;
            case db::AggFunc::kSum:
              out.push_back(state.count_nonnull == 0
                                ? db::Value::Null()
                                : db::Value::Int(state.int_sum));
              break;
            case db::AggFunc::kAvg:
              out.push_back(
                  state.count_nonnull == 0
                      ? db::Value::Null()
                      : db::Value::Real(
                            static_cast<double>(state.int_sum) /
                            static_cast<double>(state.count_nonnull)));
              break;
            case db::AggFunc::kMin:
              out.push_back(state.values.empty() ? db::Value::Null()
                                                 : state.values.begin()->first);
              break;
            case db::AggFunc::kMax:
              out.push_back(state.values.empty()
                                ? db::Value::Null()
                                : state.values.rbegin()->first);
              break;
          }
          break;
        }
      }
    }
    return out;
  }

  // Visible outputs of the groups with the given keys, as a sorted
  // multiset, read from `groups`.
  std::vector<db::Row> SnapshotOutputs(const GroupMap& groups,
                                       const std::vector<db::Row>& keys) const {
    std::vector<db::Row> outputs;
    for (const db::Row& key : keys) {
      auto it = groups.find(key);
      if (it == groups.end()) continue;
      // Grouped queries drop empty groups; the global group never drops.
      if (!query_.group_by.empty() && it->second.row_count <= 0) continue;
      outputs.push_back(GroupOutput(key, it->second));
    }
    std::sort(outputs.begin(), outputs.end(), RowLess());
    return outputs;
  }

  bool ProbeGrouped(const CellDelta& delta, int slot,
                    const db::DeltaOverlay* co) const {
    std::vector<db::Row> old_inputs =
        AffectedInputRows(delta.row, slot, nullptr, co);
    std::vector<db::Row> new_inputs =
        AffectedInputRows(delta.row, slot, &delta, co);
    if (old_inputs == new_inputs) return false;

    std::vector<db::Row> keys;
    for (const db::Row& r : old_inputs) keys.push_back(GroupKeyOf(r));
    for (const db::Row& r : new_inputs) keys.push_back(GroupKeyOf(r));
    std::sort(keys.begin(), keys.end(), RowLess());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::vector<db::Row> before = SnapshotOutputs(groups_, keys);
    // Apply the swap to a local copy of just the affected groups; the
    // shared prepared state stays untouched (and therefore thread-safe).
    GroupMap scratch;
    for (const db::Row& key : keys) {
      auto it = groups_.find(key);
      if (it != groups_.end()) scratch.insert(*it);
    }
    for (const db::Row& r : old_inputs) UpdateGroup(scratch, r, -1);
    for (const db::Row& r : new_inputs) UpdateGroup(scratch, r, +1);
    std::vector<db::Row> after = SnapshotOutputs(scratch, keys);
    return before != after;
  }

  const db::Database& db_;
  const db::BoundQuery& query_;

  bool two_tables_ = false;
  bool grouped_ = false;
  bool fallback_ = false;

  std::vector<char> sensitive_[2];
  std::vector<int> needed_[2];  // sensitive column indices, ascending
  db::ResultTable base_result_;

  std::unordered_map<uint64_t, std::vector<int>> index0_, index1_;
  int join_col0_ = -1, join_col1_ = -1;

  std::vector<char> row_present_;
  std::vector<uint64_t> row_hash_;
  std::unordered_map<uint64_t, int64_t> tuple_counts_;

  GroupMap groups_;
  std::vector<int> agg_items_;
  std::vector<int> select_key_index_;
};

PreparedConflictQuery::PreparedConflictQuery(const db::Database& db,
                                             const db::BoundQuery& query,
                                             const db::DeltaOverlay* build_overlay)
    : impl_(std::make_unique<const Impl>(db, query, build_overlay)) {}

PreparedConflictQuery::~PreparedConflictQuery() = default;

bool PreparedConflictQuery::is_fallback() const { return impl_->is_fallback(); }

bool PreparedConflictQuery::Probe(const CellDelta& delta, ConflictStats& stats,
                                  const db::DeltaOverlay* committed) const {
  return impl_->Probe(delta, stats, committed);
}

std::vector<uint32_t> ConflictSetEngine::ConflictSet(
    const db::BoundQuery& query, const SupportSet& support) const {
  Stats ignored;
  return ConflictSet(query, support, ignored);
}

std::vector<uint32_t> ConflictSetEngine::ConflictSet(
    const db::BoundQuery& query, const SupportSet& support,
    Stats& stats) const {
  return ConflictSet(query, support, nullptr, stats);
}

std::vector<uint32_t> ConflictSetEngine::ConflictSet(
    const PreparedConflictQuery& prepared, const SupportSet& support,
    Stats& stats) const {
  return ConflictSet(prepared, support, nullptr, stats);
}

std::vector<uint32_t> ConflictSetEngine::ConflictSet(
    const db::BoundQuery& query, const SupportSet& support,
    const db::DeltaOverlay* committed, Stats& stats) const {
  PreparedConflictQuery prepared(*db_, query, committed);
  return ConflictSet(prepared, support, committed, stats);
}

std::vector<uint32_t> ConflictSetEngine::ConflictSet(
    const PreparedConflictQuery& prepared, const SupportSet& support,
    const db::DeltaOverlay* committed, Stats& stats) const {
  Stats local;
  if (prepared.is_fallback()) ++local.fallback_queries;
  std::vector<uint32_t> conflicts;
  for (uint32_t i = 0; i < support.size(); ++i) {
    if (prepared.Probe(support[i], local, committed)) conflicts.push_back(i);
  }
  stats.Merge(local);
  probes_.fetch_add(local.probes, std::memory_order_relaxed);
  pruned_.fetch_add(local.pruned, std::memory_order_relaxed);
  fallback_queries_.fetch_add(local.fallback_queries,
                              std::memory_order_relaxed);
  return conflicts;
}

}  // namespace qp::market
