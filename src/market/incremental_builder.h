// Incremental hypergraph construction for a long-lived market.
//
// The one-shot BuildHypergraph computes every query's conflict set and
// throws the builder state away; a serving broker instead sees queries
// *arrive* while the support set stays fixed. IncrementalBuilder owns the
// growing hypergraph (items = support deltas) and extends it with the
// conflict sets of newly arrived queries — the incidence index and any
// refined ItemClasses extend by delta (core-side), never rebuild.
// BuildHypergraph is now a thin wrapper over one Append call.
//
// Conflict probing is read-only over the database (per-probe overlays,
// see market/conflict.h), which splits the builder the same way as the
// serving engine: Append / mutable accessors are writer-side and must be
// externally serialized, while ConflictSetFor is const, touches only
// immutable state, and may be called from any number of threads — even
// while a (single) writer appends.
//
// With a versioned catalog (db/versioned_database.h) attached, every
// probe additionally reads through a published generation overlay:
// writer-side paths (ComputeConflictSets) read the head generation —
// safe unguarded because the caller serializes them with catalog
// commits and folds — while ConflictSetFor pins an epoch guard and a
// head snapshot for the whole probe, so seller deltas can commit (and
// bases fold) concurrently with reader probes. Prepared-cache entries
// are keyed to the generation they were built at (see
// market/prepared_cache.h for the invalidate-before-publish contract).
#ifndef QP_MARKET_INCREMENTAL_BUILDER_H_
#define QP_MARKET_INCREMENTAL_BUILDER_H_

#include <vector>

#include "core/hypergraph.h"
#include "db/database.h"
#include "db/query.h"
#include "db/versioned_database.h"
#include "market/conflict.h"
#include "market/prepared_cache.h"
#include "market/support.h"

namespace qp::market {

struct BuildOptions {
  /// Use the incremental conflict engine (false = naive re-evaluation;
  /// the equivalence is tested, the naive path is for oracles/debugging).
  bool incremental = true;
  /// Threads for edge construction in Append (<= 1 = inline). Queries are
  /// fanned out over qp::common::ThreadPool into per-query slots and
  /// reduced in index order, so the hypergraph — and the merged per-query
  /// stats — are bit-identical for every thread count.
  int num_threads = 1;
  /// Cap on the prepared-query cache (0 = unbounded); overflowing
  /// inserts evict approximately-LRU entries. Serving stacks that accept
  /// queries from the wire produce unbounded distinct texts and must keep
  /// a cap; eviction never changes conflict sets (prepared state is a
  /// pure function of (db, query)).
  size_t prepared_cache_entries = 4096;
};

class IncrementalBuilder {
 public:
  /// The database must outlive the builder and must not change contents
  /// while it is in use; probing never writes to it. `catalog` (optional)
  /// is a versioned view over the same database: when given, probes read
  /// base+overlay through its published generations, the base may change
  /// through the catalog's Commit/TryFold, and the plain-contents rule
  /// above applies to the *logical* view instead.
  IncrementalBuilder(const db::Database* db, SupportSet support,
                     const BuildOptions& options = {},
                     const db::VersionedDatabase* catalog = nullptr);

  /// Computes the conflict sets of `queries` (in parallel when
  /// options.num_threads > 1) and appends one edge each, in query order.
  /// Returns the index of the first appended edge. Writer-side.
  int Append(const std::vector<db::BoundQuery>& queries);

  /// Probe half of Append: the conflict sets of `queries`, in query
  /// order, fanned out over options.num_threads with an index-ordered
  /// stats reduction — without growing the hypergraph. The sharded router
  /// probes once against the *global* support through this and routes the
  /// resulting edges to shard-local builders. Writer-side (accumulates
  /// build stats and seconds).
  std::vector<std::vector<uint32_t>> ComputeConflictSets(
      const std::vector<db::BoundQuery>& queries);

  /// Append half: adds one pre-computed edge per entry, in order (items
  /// are indices into this builder's support). Returns the index of the
  /// first appended edge. Writer-side.
  int AppendEdges(std::vector<std::vector<uint32_t>> edges);

  /// Conflict set of a query *without* appending an edge — the engine's
  /// Purchase path prices exactly the bundle the buyer would receive.
  /// Read-only and thread-safe, including concurrently with one Append.
  /// Repeat queries (by SQL text) share prepared probing state through
  /// the builder's PreparedQueryCache.
  /// `pinned_generation` (optional) receives the catalog generation the
  /// probe ran at (0 without a catalog) — callers use it to measure
  /// quote staleness against the head.
  std::vector<uint32_t> ConflictSetFor(
      const db::BoundQuery& query, uint64_t* pinned_generation = nullptr) const;

  /// Drops cached prepared probing state; required after the seller
  /// actually edits data (market::ApplyDelta), since prepared state bakes
  /// in row contents. Safe concurrently with readers; do not call while
  /// the database contents are mid-edit under active probes.
  void InvalidatePreparedQueries() { prepared_cache_.Invalidate(); }

  /// Selective form for a single-cell edit: drops only prepared entries
  /// whose SensitiveColumns contain the edited cell (the only entries
  /// whose prepared state can depend on its contents). With a versioned
  /// catalog, pass the generation number the edit is about to publish
  /// and call this BEFORE the catalog Commit (the cache's floor fence
  /// depends on that ordering).
  void InvalidatePreparedQueriesFor(const CellDelta& delta,
                                    uint64_t next_generation = 0) {
    prepared_cache_.InvalidateCell(delta.table, delta.column,
                                   next_generation);
  }

  /// Hit/miss/invalidation counters of the prepared-query cache.
  PreparedQueryCache::Stats prepared_stats() const {
    return prepared_cache_.stats();
  }

  const core::Hypergraph& hypergraph() const { return hypergraph_; }
  /// Mutable access for callers that move the built state out (the
  /// one-shot BuildHypergraph wrapper); the builder must not be used for
  /// further appends afterwards.
  core::Hypergraph& mutable_hypergraph() { return hypergraph_; }
  std::vector<std::vector<uint32_t>>& mutable_conflict_sets() {
    return conflict_sets_;
  }
  const SupportSet& support() const { return support_; }
  /// Per appended query, in arrival order: its conflict set (= its edge).
  const std::vector<std::vector<uint32_t>>& conflict_sets() const {
    return conflict_sets_;
  }
  /// Cumulative wall-clock seconds spent computing conflict sets in
  /// Append (writer-side, exact: probes run inside the timed region).
  double seconds() const { return seconds_; }
  /// Build-side probe accounting: per-query stats merged in query order
  /// (deterministic for every num_threads). Excludes ConflictSetFor.
  const ConflictSetEngine::Stats& build_stats() const { return build_stats_; }
  /// Totals across every probe through this builder — Append *and*
  /// ConflictSetFor — accumulated atomically (exact under concurrency).
  ConflictSetEngine::Stats stats() const { return engine_.stats(); }

 private:
  const db::Database* db_;
  const db::VersionedDatabase* catalog_;  // may be null (plain database)
  SupportSet support_;
  BuildOptions options_;
  ConflictSetEngine engine_;
  PreparedQueryCache prepared_cache_;
  core::Hypergraph hypergraph_;
  std::vector<std::vector<uint32_t>> conflict_sets_;
  ConflictSetEngine::Stats build_stats_;
  double seconds_ = 0.0;
};

}  // namespace qp::market

#endif  // QP_MARKET_INCREMENTAL_BUILDER_H_
