// Incremental hypergraph construction for a long-lived market.
//
// The one-shot BuildHypergraph computes every query's conflict set and
// throws the builder state away; a serving broker instead sees queries
// *arrive* while the support set stays fixed. IncrementalBuilder owns the
// growing hypergraph (items = support deltas) and extends it with the
// conflict sets of newly arrived queries — the incidence index and any
// refined ItemClasses extend by delta (core-side), never rebuild.
// BuildHypergraph is now a thin wrapper over one Append call.
#ifndef QP_MARKET_INCREMENTAL_BUILDER_H_
#define QP_MARKET_INCREMENTAL_BUILDER_H_

#include <vector>

#include "core/hypergraph.h"
#include "db/database.h"
#include "db/query.h"
#include "market/conflict.h"
#include "market/support.h"

namespace qp::market {

struct BuildOptions {
  /// Use the incremental conflict engine (false = naive re-evaluation;
  /// the equivalence is tested, the naive path is for oracles/debugging).
  bool incremental = true;
};

class IncrementalBuilder {
 public:
  /// The database must outlive the builder. Conflict probing applies and
  /// reverts support deltas on `db` in place, so concurrent Append /
  /// ConflictSetFor calls must be serialized by the caller (the engine
  /// holds its writer lock).
  IncrementalBuilder(db::Database* db, SupportSet support,
                     const BuildOptions& options = {});

  /// Computes the conflict sets of `queries` and appends one edge each.
  /// Returns the index of the first appended edge.
  int Append(const std::vector<db::BoundQuery>& queries);

  /// Conflict set of a query *without* appending an edge — the engine's
  /// Purchase path prices exactly the bundle the buyer would receive.
  std::vector<uint32_t> ConflictSetFor(const db::BoundQuery& query);

  const core::Hypergraph& hypergraph() const { return hypergraph_; }
  /// Mutable access for callers that move the built state out (the
  /// one-shot BuildHypergraph wrapper); the builder must not be used for
  /// further appends afterwards.
  core::Hypergraph& mutable_hypergraph() { return hypergraph_; }
  std::vector<std::vector<uint32_t>>& mutable_conflict_sets() {
    return conflict_sets_;
  }
  const SupportSet& support() const { return support_; }
  /// Per appended query, in arrival order: its conflict set (= its edge).
  const std::vector<std::vector<uint32_t>>& conflict_sets() const {
    return conflict_sets_;
  }
  /// Cumulative wall-clock seconds spent computing conflict sets.
  double seconds() const { return seconds_; }
  const ConflictSetEngine::Stats& stats() const { return engine_.stats(); }

 private:
  db::Database* db_;
  SupportSet support_;
  BuildOptions options_;
  ConflictSetEngine engine_;
  core::Hypergraph hypergraph_;
  std::vector<std::vector<uint32_t>> conflict_sets_;
  double seconds_ = 0.0;
};

}  // namespace qp::market

#endif  // QP_MARKET_INCREMENTAL_BUILDER_H_
