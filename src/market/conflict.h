// Conflict-set computation: C_S(Q, D) = { D' in S : Q(D) != Q(D') }.
//
// Two engines with identical semantics:
//
//  * NaiveConflictSet — applies each delta, re-evaluates the query with the
//    reference evaluator, compares canonical results, reverts. O(|S| *
//    eval(Q)) per query; the correctness oracle.
//
//  * ConflictSetEngine — prepares per-query state once (per-row
//    contribution hashes, group aggregate states with exact integer
//    accumulators, join-key indexes) and answers each delta in O(1)-ish:
//    recompute only the modified row's (or its join partners')
//    contribution, tentatively update the affected groups, compare the
//    visible output, revert. Falls back to naive re-evaluation for LIMIT
//    queries and SUM/AVG over double columns (where incremental float
//    accumulation could drift from the reference evaluator).
//
// tests/market/conflict_test.cc checks the two engines produce identical
// conflict sets over randomized queries, datasets and supports.
#ifndef QP_MARKET_CONFLICT_H_
#define QP_MARKET_CONFLICT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "db/database.h"
#include "db/query.h"
#include "market/support.h"

namespace qp::market {

/// Reference implementation (apply / re-evaluate / compare / revert).
std::vector<uint32_t> NaiveConflictSet(db::Database& db,
                                       const db::BoundQuery& query,
                                       const SupportSet& support);

class ConflictSetEngine {
 public:
  /// The database must outlive the engine. Deltas are applied and reverted
  /// in place during probing; the database is always restored.
  explicit ConflictSetEngine(db::Database* db) : db_(db) {}

  /// Conflict set of `query` as sorted indices into `support`.
  std::vector<uint32_t> ConflictSet(const db::BoundQuery& query,
                                    const SupportSet& support);

  struct Stats {
    int64_t probes = 0;          // sensitive deltas actually probed
    int64_t pruned = 0;          // deltas skipped by column sensitivity
    int64_t fallback_queries = 0;  // queries handled by full re-evaluation
  };
  const Stats& stats() const { return stats_; }

 private:
  db::Database* db_;
  Stats stats_;
};

}  // namespace qp::market

#endif  // QP_MARKET_CONFLICT_H_
