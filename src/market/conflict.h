// Conflict-set computation: C_S(Q, D) = { D' in S : Q(D) != Q(D') }.
//
// Probing is *read-only with respect to the database*: a support delta is
// viewed through a db::DeltaOverlay (patched-cell reads over the const
// base tables) instead of being applied in place, so any number of
// probes — across queries, across threads — can run concurrently against
// one shared db::Database. Two implementations with identical semantics:
//
//  * NaiveConflictSet — re-evaluates the query under each delta's overlay
//    with the reference evaluator and compares canonical results. O(|S| *
//    eval(Q)) per query; the correctness oracle.
//
//  * ConflictSetEngine / PreparedConflictQuery — prepares per-query state
//    once (per-row contribution hashes, group aggregate states with exact
//    integer accumulators, join-key indexes) and answers each delta in
//    O(1)-ish: recompute only the patched row's (or its join partners')
//    contribution, apply the affected groups' updates to a local copy,
//    compare the visible output. Falls back to full overlay re-evaluation
//    for LIMIT queries and SUM/AVG over double columns (where incremental
//    float accumulation could drift from the reference evaluator).
//    Prepared state is immutable after construction, so one
//    PreparedConflictQuery may be probed from many threads at once.
//
// tests/market/conflict_test.cc checks that both engines match each other
// *and* the pre-overlay apply/evaluate/revert semantics bit-for-bit over
// randomized queries, datasets and supports, including concurrent probes.
#ifndef QP_MARKET_CONFLICT_H_
#define QP_MARKET_CONFLICT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "db/database.h"
#include "db/query.h"
#include "market/support.h"

namespace qp::market {

/// Reference implementation (overlay / re-evaluate / compare). Read-only:
/// `db` is never modified.
std::vector<uint32_t> NaiveConflictSet(const db::Database& db,
                                       const db::BoundQuery& query,
                                       const SupportSet& support);

/// Probe accounting. Plain integers: accumulate per thread (or per call)
/// and Merge for exact, lost-update-free totals.
struct ConflictStats {
  int64_t probes = 0;            // sensitive deltas actually probed
  int64_t pruned = 0;            // deltas skipped by column sensitivity
  int64_t fallback_queries = 0;  // queries handled by full re-evaluation

  ConflictStats& Merge(const ConflictStats& other) {
    probes += other.probes;
    pruned += other.pruned;
    fallback_queries += other.fallback_queries;
    return *this;
  }
};

/// Per-query prepared probing state (contribution hashes, group
/// accumulators, join indexes), built once against the database's current
/// contents. Immutable after construction: Probe is const and touches no
/// shared mutable state, so one prepared query can serve concurrent
/// probes from many threads.
class PreparedConflictQuery {
 public:
  /// `db` and `query` must outlive the prepared state; the database's
  /// contents must not change while probes are in flight.
  PreparedConflictQuery(const db::Database& db, const db::BoundQuery& query);
  ~PreparedConflictQuery();

  PreparedConflictQuery(const PreparedConflictQuery&) = delete;
  PreparedConflictQuery& operator=(const PreparedConflictQuery&) = delete;

  /// True when the query is answered by full overlay re-evaluation
  /// (LIMIT, double SUM/AVG).
  bool is_fallback() const;

  /// Whether applying `delta` changes the query's visible result.
  /// Read-only and thread-safe; `stats` receives this probe's accounting.
  bool Probe(const CellDelta& delta, ConflictStats& stats) const;

 private:
  class Impl;
  std::unique_ptr<const Impl> impl_;
};

class ConflictSetEngine {
 public:
  using Stats = ConflictStats;

  /// The database must outlive the engine. Probing never writes to it —
  /// deltas are viewed through per-probe overlays — so concurrent
  /// ConflictSet calls from any number of threads are safe.
  explicit ConflictSetEngine(const db::Database* db) : db_(db) {}

  /// Conflict set of `query` as sorted indices into `support`.
  /// Thread-safe; accounting lands in the engine totals (stats()).
  std::vector<uint32_t> ConflictSet(const db::BoundQuery& query,
                                    const SupportSet& support) const;

  /// Same, additionally reporting this call's share of the accounting in
  /// `stats` (the engine totals still include it). Callers that fan
  /// queries across threads collect per-slot stats through this overload
  /// and Merge them in index order for deterministic attribution.
  std::vector<uint32_t> ConflictSet(const db::BoundQuery& query,
                                    const SupportSet& support,
                                    Stats& stats) const;

  /// Same, probing through caller-supplied prepared state (e.g. from a
  /// PreparedQueryCache) instead of preparing per call. Bit-identical to
  /// the preparing overloads — prepared state is a pure function of
  /// (db, query) — including the accounting: fallback_queries counts once
  /// per answered query, cached or not.
  std::vector<uint32_t> ConflictSet(const PreparedConflictQuery& prepared,
                                    const SupportSet& support,
                                    Stats& stats) const;

  /// Exact snapshot of the totals across every probe through this engine
  /// (atomic accumulation: no lost updates under concurrency).
  Stats stats() const {
    Stats out;
    out.probes = probes_.load(std::memory_order_relaxed);
    out.pruned = pruned_.load(std::memory_order_relaxed);
    out.fallback_queries = fallback_queries_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  const db::Database* db_;
  mutable std::atomic<int64_t> probes_{0};
  mutable std::atomic<int64_t> pruned_{0};
  mutable std::atomic<int64_t> fallback_queries_{0};
};

}  // namespace qp::market

#endif  // QP_MARKET_CONFLICT_H_
