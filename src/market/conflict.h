// Conflict-set computation: C_S(Q, D) = { D' in S : Q(D) != Q(D') }.
//
// Probing is *read-only with respect to the database*: a support delta is
// viewed through a db::DeltaOverlay (patched-cell reads over the const
// base tables) instead of being applied in place, so any number of
// probes — across queries, across threads — can run concurrently against
// one shared db::Database. Two implementations with identical semantics:
//
//  * NaiveConflictSet — re-evaluates the query under each delta's overlay
//    with the reference evaluator and compares canonical results. O(|S| *
//    eval(Q)) per query; the correctness oracle.
//
//  * ConflictSetEngine / PreparedConflictQuery — prepares per-query state
//    once (per-row contribution hashes, group aggregate states with exact
//    integer accumulators, join-key indexes) and answers each delta in
//    O(1)-ish: recompute only the patched row's (or its join partners')
//    contribution, apply the affected groups' updates to a local copy,
//    compare the visible output. Falls back to full overlay re-evaluation
//    for LIMIT queries and SUM/AVG over double columns (where incremental
//    float accumulation could drift from the reference evaluator).
//    Prepared state is immutable after construction, so one
//    PreparedConflictQuery may be probed from many threads at once.
//
// tests/market/conflict_test.cc checks that both engines match each other
// *and* the pre-overlay apply/evaluate/revert semantics bit-for-bit over
// randomized queries, datasets and supports, including concurrent probes.
//
// Versioned catalogs (db/versioned_database.h) layer in the same way:
// committed seller deltas live in a published generation overlay, and
// every entry point here takes an optional `committed` overlay. Build
// paths read base+committed; probe paths read base+committed with the
// probe's one-cell delta chained on top (DeltaOverlay::set_parent), so
// probing stays correct while the base tables are concurrently folded —
// no read here touches a base cell the committed overlay shadows.
#ifndef QP_MARKET_CONFLICT_H_
#define QP_MARKET_CONFLICT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "db/database.h"
#include "db/delta_overlay.h"
#include "db/query.h"
#include "market/support.h"

namespace qp::market {

/// Reference implementation (overlay / re-evaluate / compare). Read-only:
/// `db` is never modified.
std::vector<uint32_t> NaiveConflictSet(const db::Database& db,
                                       const db::BoundQuery& query,
                                       const SupportSet& support);

/// Same, reading through `committed` (a published catalog generation's
/// overlay; nullptr behaves like the overload above). Each probe chains
/// its one-cell overlay over `committed`.
std::vector<uint32_t> NaiveConflictSet(const db::Database& db,
                                       const db::BoundQuery& query,
                                       const SupportSet& support,
                                       const db::DeltaOverlay* committed);

/// Probe accounting. Plain integers: accumulate per thread (or per call)
/// and Merge for exact, lost-update-free totals.
struct ConflictStats {
  int64_t probes = 0;            // sensitive deltas actually probed
  int64_t pruned = 0;            // deltas skipped by column sensitivity
  int64_t fallback_queries = 0;  // queries handled by full re-evaluation

  ConflictStats& Merge(const ConflictStats& other) {
    probes += other.probes;
    pruned += other.pruned;
    fallback_queries += other.fallback_queries;
    return *this;
  }
};

/// Per-query prepared probing state (contribution hashes, group
/// accumulators, join indexes), built once against the database's current
/// contents. Immutable after construction: Probe is const and touches no
/// shared mutable state, so one prepared query can serve concurrent
/// probes from many threads.
class PreparedConflictQuery {
 public:
  /// `db` and `query` must outlive the prepared state. `build_overlay`
  /// (when given) is the committed catalog overlay the state is built
  /// against; it is read only during construction and not retained.
  /// Cells the query is sensitive to must not change — through any
  /// later committed overlay — while probes through this state are in
  /// flight (the prepared cache enforces this by generation-keyed
  /// invalidation); base cells shadowed by the committed overlay passed
  /// to Probe may change freely (catalog folds).
  explicit PreparedConflictQuery(const db::Database& db,
                                 const db::BoundQuery& query,
                                 const db::DeltaOverlay* build_overlay =
                                     nullptr);
  ~PreparedConflictQuery();

  PreparedConflictQuery(const PreparedConflictQuery&) = delete;
  PreparedConflictQuery& operator=(const PreparedConflictQuery&) = delete;

  /// True when the query is answered by full overlay re-evaluation
  /// (LIMIT, double SUM/AVG).
  bool is_fallback() const;

  /// Whether applying `delta` changes the query's visible result.
  /// Read-only and thread-safe; `stats` receives this probe's
  /// accounting. `committed` is the catalog overlay of the caller's
  /// pinned generation (nullptr for a plain database); the delta is
  /// viewed chained over it.
  bool Probe(const CellDelta& delta, ConflictStats& stats,
             const db::DeltaOverlay* committed = nullptr) const;

 private:
  class Impl;
  std::unique_ptr<const Impl> impl_;
};

class ConflictSetEngine {
 public:
  using Stats = ConflictStats;

  /// The database must outlive the engine. Probing never writes to it —
  /// deltas are viewed through per-probe overlays — so concurrent
  /// ConflictSet calls from any number of threads are safe.
  explicit ConflictSetEngine(const db::Database* db) : db_(db) {}

  /// Conflict set of `query` as sorted indices into `support`.
  /// Thread-safe; accounting lands in the engine totals (stats()).
  std::vector<uint32_t> ConflictSet(const db::BoundQuery& query,
                                    const SupportSet& support) const;

  /// Same, additionally reporting this call's share of the accounting in
  /// `stats` (the engine totals still include it). Callers that fan
  /// queries across threads collect per-slot stats through this overload
  /// and Merge them in index order for deterministic attribution.
  std::vector<uint32_t> ConflictSet(const db::BoundQuery& query,
                                    const SupportSet& support,
                                    Stats& stats) const;

  /// Same, probing through caller-supplied prepared state (e.g. from a
  /// PreparedQueryCache) instead of preparing per call. Bit-identical to
  /// the preparing overloads — prepared state is a pure function of
  /// (db, query) — including the accounting: fallback_queries counts once
  /// per answered query, cached or not.
  std::vector<uint32_t> ConflictSet(const PreparedConflictQuery& prepared,
                                    const SupportSet& support,
                                    Stats& stats) const;

  /// Versioned-catalog variants: probe through `committed` (a pinned
  /// generation's overlay; nullptr degenerates to the overloads above).
  /// The preparing overload also builds the prepared state against it.
  std::vector<uint32_t> ConflictSet(const db::BoundQuery& query,
                                    const SupportSet& support,
                                    const db::DeltaOverlay* committed,
                                    Stats& stats) const;
  std::vector<uint32_t> ConflictSet(const PreparedConflictQuery& prepared,
                                    const SupportSet& support,
                                    const db::DeltaOverlay* committed,
                                    Stats& stats) const;

  /// Exact snapshot of the totals across every probe through this engine
  /// (atomic accumulation: no lost updates under concurrency).
  Stats stats() const {
    Stats out;
    out.probes = probes_.load(std::memory_order_relaxed);
    out.pruned = pruned_.load(std::memory_order_relaxed);
    out.fallback_queries = fallback_queries_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  const db::Database* db_;
  mutable std::atomic<int64_t> probes_{0};
  mutable std::atomic<int64_t> pruned_{0};
  mutable std::atomic<int64_t> fallback_queries_{0};
};

}  // namespace qp::market

#endif  // QP_MARKET_CONFLICT_H_
