#include "market/incremental_builder.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace qp::market {

IncrementalBuilder::IncrementalBuilder(const db::Database* db,
                                       SupportSet support,
                                       const BuildOptions& options)
    : db_(db),
      support_(std::move(support)),
      options_(options),
      engine_(db),
      hypergraph_(static_cast<uint32_t>(support_.size())) {}

int IncrementalBuilder::Append(const std::vector<db::BoundQuery>& queries) {
  Stopwatch timer;
  const int first = hypergraph_.num_edges();
  const int count = static_cast<int>(queries.size());

  // Fan the queries out into per-index slots; probing is read-only over
  // the shared database, so the workers share it without synchronization.
  std::vector<std::vector<uint32_t>> edges(count);
  std::vector<ConflictSetEngine::Stats> slot_stats(count);
  common::ThreadPool pool(options_.num_threads);
  pool.ParallelFor(count, [&](int i) {
    if (options_.incremental) {
      edges[i] = engine_.ConflictSet(queries[i], support_, slot_stats[i]);
    } else {
      edges[i] = NaiveConflictSet(*db_, queries[i], support_);
    }
  });

  // Index-ordered reduction: edges append in arrival order and stats
  // merge in the same order, so the result is identical for every
  // thread count.
  conflict_sets_.reserve(conflict_sets_.size() + queries.size());
  for (int i = 0; i < count; ++i) {
    hypergraph_.AddEdge(edges[i]);
    conflict_sets_.push_back(std::move(edges[i]));
    build_stats_.Merge(slot_stats[i]);
  }
  seconds_ += timer.ElapsedSeconds();
  return first;
}

std::vector<uint32_t> IncrementalBuilder::ConflictSetFor(
    const db::BoundQuery& query) const {
  return options_.incremental ? engine_.ConflictSet(query, support_)
                              : NaiveConflictSet(*db_, query, support_);
}

}  // namespace qp::market
