#include "market/incremental_builder.h"

#include <utility>

#include "common/stopwatch.h"

namespace qp::market {

IncrementalBuilder::IncrementalBuilder(db::Database* db, SupportSet support,
                                       const BuildOptions& options)
    : db_(db),
      support_(std::move(support)),
      options_(options),
      engine_(db),
      hypergraph_(static_cast<uint32_t>(support_.size())) {}

int IncrementalBuilder::Append(const std::vector<db::BoundQuery>& queries) {
  Stopwatch timer;
  const int first = hypergraph_.num_edges();
  conflict_sets_.reserve(conflict_sets_.size() + queries.size());
  for (const db::BoundQuery& query : queries) {
    std::vector<uint32_t> conflicts = ConflictSetFor(query);
    hypergraph_.AddEdge(conflicts);
    conflict_sets_.push_back(std::move(conflicts));
  }
  seconds_ += timer.ElapsedSeconds();
  return first;
}

std::vector<uint32_t> IncrementalBuilder::ConflictSetFor(
    const db::BoundQuery& query) {
  return options_.incremental ? engine_.ConflictSet(query, support_)
                              : NaiveConflictSet(*db_, query, support_);
}

}  // namespace qp::market
