#include "market/incremental_builder.h"

#include <memory>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace qp::market {

IncrementalBuilder::IncrementalBuilder(const db::Database* db,
                                       SupportSet support,
                                       const BuildOptions& options,
                                       const db::VersionedDatabase* catalog)
    : db_(db),
      catalog_(catalog),
      support_(std::move(support)),
      options_(options),
      engine_(db),
      prepared_cache_(db, options.prepared_cache_entries),
      hypergraph_(static_cast<uint32_t>(support_.size())) {}

int IncrementalBuilder::Append(const std::vector<db::BoundQuery>& queries) {
  return AppendEdges(ComputeConflictSets(queries));
}

std::vector<std::vector<uint32_t>> IncrementalBuilder::ComputeConflictSets(
    const std::vector<db::BoundQuery>& queries) {
  Stopwatch timer;
  const int count = static_cast<int>(queries.size());

  // Writer-side: the caller serializes this with catalog commits/folds,
  // so the head generation is stable for the whole fan-out and needs no
  // epoch guard.
  const db::DeltaOverlay* committed = nullptr;
  uint64_t generation = 0;
  if (catalog_ != nullptr) {
    const db::VersionedDatabase::Generation* head = catalog_->head();
    committed = &head->overlay;
    generation = head->number;
  }

  // Fan the queries out into per-index slots; probing is read-only over
  // the shared database, so the workers share it without synchronization.
  // Index-ordered stats reduction after the join keeps the merged
  // accounting identical for every thread count.
  std::vector<std::vector<uint32_t>> edges(static_cast<size_t>(count));
  std::vector<ConflictSetEngine::Stats> slot_stats(static_cast<size_t>(count));
  common::ThreadPool pool(options_.num_threads);
  pool.ParallelFor(count, [&](int i) {
    if (options_.incremental) {
      std::shared_ptr<const PreparedConflictQuery> prepared =
          prepared_cache_.GetOrPrepare(queries[static_cast<size_t>(i)],
                                       committed, generation);
      edges[static_cast<size_t>(i)] =
          engine_.ConflictSet(*prepared, support_, committed,
                              slot_stats[static_cast<size_t>(i)]);
    } else {
      edges[static_cast<size_t>(i)] = NaiveConflictSet(
          *db_, queries[static_cast<size_t>(i)], support_, committed);
    }
  });
  for (int i = 0; i < count; ++i) {
    build_stats_.Merge(slot_stats[static_cast<size_t>(i)]);
  }
  seconds_ += timer.ElapsedSeconds();
  return edges;
}

int IncrementalBuilder::AppendEdges(std::vector<std::vector<uint32_t>> edges) {
  Stopwatch timer;
  const int first = hypergraph_.num_edges();
  conflict_sets_.reserve(conflict_sets_.size() + edges.size());
  for (std::vector<uint32_t>& edge : edges) {
    hypergraph_.AddEdge(edge);
    conflict_sets_.push_back(std::move(edge));
  }
  seconds_ += timer.ElapsedSeconds();
  return first;
}

std::vector<uint32_t> IncrementalBuilder::ConflictSetFor(
    const db::BoundQuery& query, uint64_t* pinned_generation) const {
  // Reader-side: pin an epoch guard and a head snapshot for the whole
  // probe, so a concurrent fold cannot reclaim the overlay under us and
  // never writes a base cell our pinned overlay does not shadow.
  common::EpochManager::Guard guard;
  const db::DeltaOverlay* committed = nullptr;
  uint64_t generation = 0;
  if (catalog_ != nullptr) {
    guard = common::EpochManager::Guard(catalog_->epochs());
    const db::VersionedDatabase::Generation* head = catalog_->head();
    committed = &head->overlay;
    generation = head->number;
  }
  if (pinned_generation != nullptr) *pinned_generation = generation;
  if (!options_.incremental) {
    return NaiveConflictSet(*db_, query, support_, committed);
  }
  std::shared_ptr<const PreparedConflictQuery> prepared =
      prepared_cache_.GetOrPrepare(query, committed, generation);
  ConflictSetEngine::Stats ignored;
  return engine_.ConflictSet(*prepared, support_, committed, ignored);
}

}  // namespace qp::market
