#include "market/incremental_builder.h"

#include <memory>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace qp::market {

IncrementalBuilder::IncrementalBuilder(const db::Database* db,
                                       SupportSet support,
                                       const BuildOptions& options)
    : db_(db),
      support_(std::move(support)),
      options_(options),
      engine_(db),
      prepared_cache_(db, options.prepared_cache_entries),
      hypergraph_(static_cast<uint32_t>(support_.size())) {}

int IncrementalBuilder::Append(const std::vector<db::BoundQuery>& queries) {
  return AppendEdges(ComputeConflictSets(queries));
}

std::vector<std::vector<uint32_t>> IncrementalBuilder::ComputeConflictSets(
    const std::vector<db::BoundQuery>& queries) {
  Stopwatch timer;
  const int count = static_cast<int>(queries.size());

  // Fan the queries out into per-index slots; probing is read-only over
  // the shared database, so the workers share it without synchronization.
  // Index-ordered stats reduction after the join keeps the merged
  // accounting identical for every thread count.
  std::vector<std::vector<uint32_t>> edges(static_cast<size_t>(count));
  std::vector<ConflictSetEngine::Stats> slot_stats(static_cast<size_t>(count));
  common::ThreadPool pool(options_.num_threads);
  pool.ParallelFor(count, [&](int i) {
    if (options_.incremental) {
      std::shared_ptr<const PreparedConflictQuery> prepared =
          prepared_cache_.GetOrPrepare(queries[static_cast<size_t>(i)]);
      edges[static_cast<size_t>(i)] =
          engine_.ConflictSet(*prepared, support_,
                              slot_stats[static_cast<size_t>(i)]);
    } else {
      edges[static_cast<size_t>(i)] =
          NaiveConflictSet(*db_, queries[static_cast<size_t>(i)], support_);
    }
  });
  for (int i = 0; i < count; ++i) {
    build_stats_.Merge(slot_stats[static_cast<size_t>(i)]);
  }
  seconds_ += timer.ElapsedSeconds();
  return edges;
}

int IncrementalBuilder::AppendEdges(std::vector<std::vector<uint32_t>> edges) {
  Stopwatch timer;
  const int first = hypergraph_.num_edges();
  conflict_sets_.reserve(conflict_sets_.size() + edges.size());
  for (std::vector<uint32_t>& edge : edges) {
    hypergraph_.AddEdge(edge);
    conflict_sets_.push_back(std::move(edge));
  }
  seconds_ += timer.ElapsedSeconds();
  return first;
}

std::vector<uint32_t> IncrementalBuilder::ConflictSetFor(
    const db::BoundQuery& query) const {
  if (!options_.incremental) return NaiveConflictSet(*db_, query, support_);
  std::shared_ptr<const PreparedConflictQuery> prepared =
      prepared_cache_.GetOrPrepare(query);
  ConflictSetEngine::Stats ignored;
  return engine_.ConflictSet(*prepared, support_, ignored);
}

}  // namespace qp::market
