// Keyed cache of prepared conflict-probing state (ROADMAP: "Prepared-query
// cache for Purchase").
//
// Every conflict-set computation starts by building a
// PreparedConflictQuery — per-row contribution hashes, group aggregate
// states, join indexes — against the database's current contents. That
// state is immutable and thread-safe to probe, so repeat queries (the
// serving engine's Purchase traffic is dominated by them) can share one
// prepared instance instead of re-preparing per call. The cache key is
// the query's SQL text (db::BoundQuery::text); programmatically built
// queries with empty text are prepared fresh every time and counted as
// misses, never inserted.
//
// KEY CONTRACT: a non-empty text must uniquely identify the query's
// structure. Parser-produced queries satisfy this (text is the SQL that
// produced them); a caller that mutates a parsed BoundQuery (predicate,
// limit, select list, ...) MUST clear `text`, or the mutated query will
// silently reuse the original's prepared state. The same rule is
// documented at db::BoundQuery::text.
//
// Concurrency: lookups take a shared lock, inserts an exclusive lock, and
// the counters are atomic — safe from any number of prober threads.
// Invalidate() drops every entry; InvalidateCell(table, column) drops
// only the entries whose query's SensitiveColumns contain the edited
// cell's column — sound because PreparedConflictQuery derives all of its
// row-content-dependent state (per-row contribution hashes, group
// aggregate states, join indexes) from exactly those columns, so an
// entry whose sensitive set misses the cell probes bit-identically
// before and after the edit. Call one of them when the seller actually
// edits data (market::ApplyDelta), since prepared state bakes in row
// contents.
// Cached probes are bit-identical to fresh ones (the prepared state is a
// pure function of (db, query)), so hit/miss — and eviction — behavior
// never changes conflict sets or probe accounting.
//
// Versioned catalogs (db/versioned_database.h) add a generation key.
// Each entry records the catalog generation it was built at; the
// overlay-taking GetOrPrepare accepts a hit only when the entry's build
// generation is <= the caller's pinned generation. That is sound
// because the engines invalidate *before* publishing a commit
// (InvalidateCell takes the about-to-publish generation): an entry that
// survives was built from sensitive-cell contents identical to every
// later generation's, so its prepared state probes bit-identically. The
// same InvalidateCell call advances a monotone `catalog_floor_` under
// the exclusive lock; an insert whose build generation no longer
// matches the floor is skipped (the freshly built state is still
// returned and used transiently) — this closes the race where a
// reader's insert of an entry built at an old generation lands after
// the invalidation scan that should have dropped it. Entries built at a
// generation *newer* than the caller's pin are bypassed the same
// transient way (stale_bypasses counts both).
//
// Capacity: the cache holds at most `max_entries` entries (0 =
// unbounded). Eviction is least-recently-used, approximated so lookups
// stay shared-locked: every hit stamps the entry with a global use tick
// (relaxed atomic), and an insert that overflows the cap evicts the
// entry with the smallest stamp under the exclusive lock it already
// holds. Probes holding an evicted entry's shared_ptr finish against the
// state they pinned — eviction only drops the map reference, exactly
// like Invalidate(). Wire front-ends produce unbounded distinct query
// texts, so serving engines must run with a cap.
#ifndef QP_MARKET_PREPARED_CACHE_H_
#define QP_MARKET_PREPARED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/database.h"
#include "db/query.h"
#include "market/conflict.h"

namespace qp::market {

class PreparedQueryCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    /// Entries dropped by the LRU cap (Invalidate() drops are counted in
    /// invalidations, not here).
    uint64_t evictions = 0;
    /// Selective (per-cell) invalidations: calls, and the entries they
    /// actually dropped (entries whose SensitiveColumns contained the
    /// edited cell). Full flushes count under `invalidations`.
    uint64_t selective_invalidations = 0;
    uint64_t selective_dropped = 0;
    /// Generation-keyed lookups that could not use / populate the cache:
    /// cached entry newer than the caller's pinned generation, or the
    /// catalog floor moved between build and insert. The freshly built
    /// state is used transiently; correctness is unaffected.
    uint64_t stale_bypasses = 0;
    /// Current number of cached entries (a gauge; merging sums the
    /// per-cache gauges).
    uint64_t entries = 0;

    Stats& Merge(const Stats& other) {
      hits += other.hits;
      misses += other.misses;
      invalidations += other.invalidations;
      evictions += other.evictions;
      selective_invalidations += other.selective_invalidations;
      selective_dropped += other.selective_dropped;
      stale_bypasses += other.stale_bypasses;
      entries += other.entries;
      return *this;
    }
  };

  /// `db` must outlive the cache; its contents must not change between
  /// Invalidate() calls. `max_entries` bounds the cache (0 = unbounded);
  /// overflowing inserts evict approximately-LRU entries.
  explicit PreparedQueryCache(const db::Database* db, size_t max_entries = 0)
      : db_(db), max_entries_(max_entries) {}

  /// Returns the cached prepared state for `query` (keyed by its SQL
  /// text), preparing and inserting on miss. Thread-safe. When two
  /// threads miss the same key at once, the first insert wins and both
  /// share it afterwards. PreparedConflictQuery only *references* the
  /// query it was built from, so each entry owns a copy of the query and
  /// the returned pointer keeps that copy alive (aliasing shared_ptr) —
  /// callers may drop their BoundQuery immediately.
  std::shared_ptr<const PreparedConflictQuery> GetOrPrepare(
      const db::BoundQuery& query) const;

  /// Generation-keyed variant for versioned catalogs: `overlay` is the
  /// caller's pinned generation overlay (nullptr for the root) and
  /// `generation` its number. Hits require the entry's build generation
  /// to be <= `generation`; misses build against `overlay` and insert
  /// only while the catalog floor still matches (see file comment).
  std::shared_ptr<const PreparedConflictQuery> GetOrPrepare(
      const db::BoundQuery& query, const db::DeltaOverlay* overlay,
      uint64_t generation) const;

  /// Drops every cached entry (seller data edit). Thread-safe; in-flight
  /// probes holding a shared_ptr finish against the state they pinned.
  void Invalidate();

  /// Drops only the entries whose query's SensitiveColumns contain
  /// (table, column) — the selective form for a single-cell seller edit.
  /// Thread-safe, same in-flight semantics as Invalidate().
  /// `next_generation` is the generation number the edit is about to
  /// publish (the writer calls this BEFORE the publish); it advances the
  /// catalog floor, fencing off in-flight inserts of entries built at
  /// older generations. Pass 0 for plain, unversioned databases.
  void InvalidateCell(int table, int column, uint64_t next_generation = 0);

  Stats stats() const {
    Stats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.invalidations = invalidations_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.selective_invalidations =
        selective_invalidations_.load(std::memory_order_relaxed);
    out.selective_dropped =
        selective_dropped_.load(std::memory_order_relaxed);
    out.stale_bypasses = stale_bypasses_.load(std::memory_order_relaxed);
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      out.entries = entries_.size();
    }
    return out;
  }

  size_t max_entries() const { return max_entries_; }

 private:
  /// Query copy + prepared state with matching lifetime: `prepared`
  /// holds a reference to `query`, so the pair lives and dies together.
  /// `last_used` is the approximate-LRU stamp: written on every hit under
  /// the shared lock (hence atomic, and mutable so const entries age).
  struct Entry {
    db::BoundQuery query;
    PreparedConflictQuery prepared;
    /// The query's SensitiveColumns, (table, column) pairs sorted for
    /// binary search — the key InvalidateCell filters on.
    std::vector<std::pair<int, int>> sensitive;
    /// Catalog generation the prepared state was built at (0 for plain
    /// databases).
    uint64_t built_generation = 0;
    mutable std::atomic<uint64_t> last_used{0};

    Entry(const db::Database& db, const db::BoundQuery& q,
          const db::DeltaOverlay* overlay, uint64_t generation)
        : query(q),
          prepared(db, query, overlay),
          sensitive(SortedSensitive(query)),
          built_generation(generation) {}
  };

  /// SensitiveColumns come back ordered by flat column index, which is
  /// not (table, column)-lexicographic when a query's tables are not in
  /// database order; re-sort so InvalidateCell can binary-search.
  static std::vector<std::pair<int, int>> SortedSensitive(
      const db::BoundQuery& query);

  /// Drops approximately-least-recently-used entries until the cap
  /// holds. Caller holds mutex_ exclusively.
  void EvictOverflowLocked() const;

  const db::Database* db_;
  const size_t max_entries_;
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<std::string, std::shared_ptr<const Entry>>
      entries_;
  mutable std::atomic<uint64_t> use_clock_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> selective_invalidations_{0};
  std::atomic<uint64_t> selective_dropped_{0};
  mutable std::atomic<uint64_t> stale_bypasses_{0};
  /// Highest `next_generation` any InvalidateCell has announced, guarded
  /// by mutex_ (exclusive to write, exclusive at insert to read — the
  /// total order between floor advances and inserts is the point).
  mutable uint64_t catalog_floor_ = 0;
};

}  // namespace qp::market

#endif  // QP_MARKET_PREPARED_CACHE_H_
