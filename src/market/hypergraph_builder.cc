#include "market/hypergraph_builder.h"

#include <utility>

namespace qp::market {

BuildResult BuildHypergraph(const db::Database& db,
                            const std::vector<db::BoundQuery>& queries,
                            const SupportSet& support,
                            const BuildOptions& options) {
  IncrementalBuilder builder(&db, support, options);
  builder.Append(queries);
  BuildResult result;
  result.hypergraph = std::move(builder.mutable_hypergraph());
  result.conflict_sets = std::move(builder.mutable_conflict_sets());
  result.stats = builder.build_stats();
  result.seconds = builder.seconds();
  return result;
}

}  // namespace qp::market
