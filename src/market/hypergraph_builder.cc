#include "market/hypergraph_builder.h"

#include "common/stopwatch.h"

namespace qp::market {

BuildResult BuildHypergraph(db::Database& db,
                            const std::vector<db::BoundQuery>& queries,
                            const SupportSet& support,
                            const BuildOptions& options) {
  Stopwatch timer;
  BuildResult result;
  result.hypergraph = core::Hypergraph(static_cast<uint32_t>(support.size()));
  result.conflict_sets.reserve(queries.size());
  ConflictSetEngine engine(&db);
  for (const db::BoundQuery& query : queries) {
    std::vector<uint32_t> conflicts =
        options.incremental ? engine.ConflictSet(query, support)
                            : NaiveConflictSet(db, query, support);
    result.hypergraph.AddEdge(conflicts);
    result.conflict_sets.push_back(std::move(conflicts));
  }
  result.stats = engine.stats();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::market
