// Support-set selection (paper Section 7.2, "Choosing support set").
//
// The paper poses: given queries Q_1..Q_m and database D, find neighboring
// databases D_1..D_m with Q_i(D_i) != Q_i(D) but Q_i(D_j) = Q_i(D) for
// j != i — i.e. give every hyperedge a *private* item, after which item
// pricing extracts full revenue (price the private item at v_i).
//
// AugmentSupportWithUniqueItems implements a greedy constructive answer:
// for every query lacking a degree-1 item in the current hypergraph, it
// searches candidate single-cell deltas drawn from the query's sensitive
// columns and keeps one that conflicts with this query and no other.
#ifndef QP_MARKET_SUPPORT_SELECTION_H_
#define QP_MARKET_SUPPORT_SELECTION_H_

#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "db/query.h"
#include "market/support.h"

namespace qp::market {

struct SupportSelectionOptions {
  /// Candidate deltas tried per query before giving up.
  int candidates_per_query = 64;
};

struct SupportSelectionResult {
  SupportSet support;            // base support + appended private deltas
  int queries_fixed = 0;         // queries that gained a private item
  int queries_unfixable = 0;     // no private delta found within budget
};

/// Appends, for each query without a private (degree-1) item under
/// `base_support`, one delta that conflicts with that query alone.
/// Read-only over `db` (candidate deltas are probed through overlays).
SupportSelectionResult AugmentSupportWithUniqueItems(
    const db::Database& db, const std::vector<db::BoundQuery>& queries,
    const SupportSet& base_support, const SupportSelectionOptions& options,
    Rng& rng);

}  // namespace qp::market

#endif  // QP_MARKET_SUPPORT_SELECTION_H_
