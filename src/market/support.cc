#include "market/support.h"

#include <set>
#include <tuple>

#include "common/str_util.h"

namespace qp::market {

namespace {

// A deterministic value different from `old_value`, preferably from the
// active domain of the same column.
db::Value PerturbValue(const db::Table& table, int row, int column,
                       Rng& rng, int max_retries) {
  const db::Value& old_value = table.cell(row, column);
  if (table.num_rows() > 1) {
    for (int attempt = 0; attempt < max_retries; ++attempt) {
      int other = static_cast<int>(rng.UniformInt(0, table.num_rows() - 1));
      if (other == row) continue;
      const db::Value& candidate = table.cell(other, column);
      if (candidate.Compare(old_value) != 0) return candidate;
    }
  }
  // Constant column (or unlucky draws): mutate arithmetically.
  switch (old_value.type()) {
    case db::ValueType::kInt:
      return db::Value::Int(old_value.as_int() +
                            rng.UniformInt(1, 1000));
    case db::ValueType::kDouble:
      return db::Value::Real(old_value.as_double() +
                             rng.UniformReal(0.5, 100.0));
    case db::ValueType::kString:
      return db::Value::Str(old_value.as_string() + "~" +
                            std::to_string(rng.UniformInt(0, 999)));
    case db::ValueType::kNull:
      return db::Value::Int(rng.UniformInt(0, 1000));
  }
  return db::Value::Int(0);
}

}  // namespace

Result<SupportSet> GenerateSupport(const db::Database& db,
                                   const SupportOptions& options, Rng& rng) {
  if (options.size < 0) {
    return Status::InvalidArgument("support size must be non-negative");
  }
  // Cumulative row counts for uniform (table, row) sampling.
  std::vector<int64_t> cumulative;
  int64_t total_rows = 0;
  for (int t = 0; t < db.num_tables(); ++t) {
    total_rows += db.table(t).num_rows();
    cumulative.push_back(total_rows);
  }
  if (total_rows == 0 && options.size > 0) {
    return Status::FailedPrecondition("cannot build a support over empty data");
  }

  SupportSet support;
  support.reserve(options.size);
  std::set<std::tuple<int, int, int, std::string>> seen;
  int attempts_left = options.size * options.max_retries + 64;
  while (static_cast<int>(support.size()) < options.size &&
         attempts_left-- > 0) {
    int64_t pick = rng.UniformInt(0, total_rows - 1);
    int table_idx = 0;
    while (pick >= cumulative[table_idx]) ++table_idx;
    int row = static_cast<int>(
        pick - (table_idx == 0 ? 0 : cumulative[table_idx - 1]));
    const db::Table& table = db.table(table_idx);
    int column =
        static_cast<int>(rng.UniformInt(0, table.schema().num_columns() - 1));
    db::Value new_value =
        PerturbValue(table, row, column, rng, options.max_retries);
    auto key = std::make_tuple(table_idx, row, column, new_value.ToString());
    if (!seen.insert(key).second) continue;  // duplicate support instance
    support.push_back(CellDelta{table_idx, row, column, std::move(new_value)});
  }
  if (static_cast<int>(support.size()) < options.size) {
    return Status::Internal(
        StrCat("could only generate ", support.size(), " of ", options.size,
               " distinct support deltas"));
  }
  return support;
}

db::Value ApplyDelta(db::Database& db, const CellDelta& delta) {
  db::Table& table = db.table(delta.table);
  db::Value old_value = table.cell(delta.row, delta.column);
  table.SetCell(delta.row, delta.column, delta.new_value);
  return old_value;
}

void UndoDelta(db::Database& db, const CellDelta& delta, db::Value old_value) {
  db.table(delta.table).SetCell(delta.row, delta.column, std::move(old_value));
}

}  // namespace qp::market
