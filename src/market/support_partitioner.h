// Item-disjoint support partitioning for sharded pricing engines.
//
// The pricing pipeline decomposes cleanly by support partition: two
// queries interact only through shared conflict-set items, so any split
// of the support that keeps every conflict edge inside one shard yields
// sub-instances whose price books compose additively into the global book
// (core/book_merge.h). SupportPartitioner computes such a split from a
// corpus of *seed edges* (conflict sets, as global item indices): items
// that ever co-occur in an edge land in the same shard (connected
// components under union-find), whole components are binned greedily onto
// the least-loaded shard (largest first — the classic LPT balance
// heuristic), and residual singletons — items no seed edge touches — are
// spread last to even the shard sizes.
//
// The partition is a pure function of (support, seed_edges, options):
// no randomness, no thread-count dependence. Queries outside the seed
// corpus may produce conflict sets that cross shards; the router's
// documented policy for those lives in serve/sharded_engine.h.
#ifndef QP_MARKET_SUPPORT_PARTITIONER_H_
#define QP_MARKET_SUPPORT_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "db/query.h"
#include "market/incremental_builder.h"
#include "market/support.h"

namespace qp::market {

struct PartitionOptions {
  /// Number of shards to produce; clamped to [1, max(1, |support|)].
  int num_shards = 2;
};

/// An item-disjoint split of a support set into shards, with the
/// global<->local index maps the serving router needs. Shard-local item
/// ids are positions in `shard_items[s]` (ascending global order), so a
/// one-shard partition is the identity map.
struct SupportPartition {
  int num_shards = 0;
  /// The global support, original order (shards index into it).
  SupportSet support;
  /// Global item -> owning shard.
  std::vector<int> shard_of_item;
  /// Global item -> its index within the owning shard's support.
  std::vector<uint32_t> local_of_item;
  /// Shard -> global item ids, ascending.
  std::vector<std::vector<uint32_t>> shard_items;
  /// Shard -> that shard's support deltas, in shard_items order.
  std::vector<SupportSet> shard_support;
  /// Populated by FromQueries only: the seed corpus's conflict sets
  /// (global item ids, query order). Probing is the pipeline's dominant
  /// cost, so callers seeding from their expected workload feed these to
  /// ShardedPricingEngine::AppendBuyersPrecomputed instead of letting
  /// the engine re-probe the same queries. Empty after Partition().
  std::vector<std::vector<uint32_t>> seed_edges;

  uint32_t num_items() const { return static_cast<uint32_t>(support.size()); }

  /// Splits a bundle of global item ids into one local bundle per shard
  /// (empty for untouched shards), preserving the bundle's item order
  /// within each part. Items >= num_items() are ignored — this sits on
  /// the lock-free reader path (QuoteBundle/Purchase), where a malformed
  /// caller bundle must degrade to "those items price as unknown", never
  /// to out-of-bounds access. Writer paths validate and reject instead
  /// (AppendBuyersPrecomputed).
  std::vector<std::vector<uint32_t>> SplitBundle(
      const std::vector<uint32_t>& bundle) const;

  /// SplitBundle into caller-owned storage: `parts` is resized to
  /// num_shards and each part cleared (capacity retained), so repeated
  /// calls on the same scratch do no heap allocation once the parts have
  /// grown to their high-water size — the RPC loop's steady-state quote
  /// path. Identical output to SplitBundle.
  void SplitBundleInto(const std::vector<uint32_t>& bundle,
                       std::vector<std::vector<uint32_t>>* parts) const;
};

class SupportPartitioner {
 public:
  /// Partitions `support` into `options.num_shards` item-disjoint shards.
  /// Every seed edge ends up entirely inside one shard; components are
  /// balanced by item count (ties to the lowest shard id) and edge-free
  /// singletons are spread to even the sizes. Seed items >= |support|
  /// are ignored. Deterministic.
  static SupportPartition Partition(
      SupportSet support, const std::vector<std::vector<uint32_t>>& seed_edges,
      const PartitionOptions& options);

  /// Convenience: probes `seed_queries`' conflict sets against `support`
  /// (read-only over the const database; `build.num_threads` fans the
  /// probes out — conflict sets, and therefore the partition, are
  /// bit-identical for every thread count) and partitions on those edges.
  /// Seeding with the expected workload makes that workload
  /// partition-respecting by construction; the probed conflict sets come
  /// back in SupportPartition::seed_edges so the caller can append the
  /// seed workload without re-probing it.
  static SupportPartition FromQueries(const db::Database* db,
                                      SupportSet support,
                                      const std::vector<db::BoundQuery>& seed_queries,
                                      const BuildOptions& build,
                                      const PartitionOptions& options);
};

}  // namespace qp::market

#endif  // QP_MARKET_SUPPORT_PARTITIONER_H_
