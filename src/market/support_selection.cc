#include "market/support_selection.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "market/conflict.h"
#include "market/hypergraph_builder.h"

namespace qp::market {

namespace {

// Candidate deltas restricted to the query's sensitive (table, column)
// pairs — deltas elsewhere can never conflict with it.
CellDelta RandomSensitiveDelta(const db::Database& db,
                               const db::BoundQuery& query, Rng& rng) {
  auto sensitive = query.SensitiveColumns();
  CellDelta delta;
  if (sensitive.empty()) return delta;  // bare COUNT(*): hopeless
  auto [table_idx, column] =
      sensitive[rng.UniformInt(0, static_cast<int64_t>(sensitive.size()) - 1)];
  const db::Table& table = db.table(table_idx);
  if (table.num_rows() == 0) return delta;
  int row = static_cast<int>(rng.UniformInt(0, table.num_rows() - 1));
  delta.table = table_idx;
  delta.row = row;
  delta.column = column;
  // Swap in another value from the column's domain when possible.
  const db::Value& old_value = table.cell(row, column);
  for (int attempt = 0; attempt < 8; ++attempt) {
    int other = static_cast<int>(rng.UniformInt(0, table.num_rows() - 1));
    const db::Value& candidate = table.cell(other, column);
    if (candidate.Compare(old_value) != 0) {
      delta.new_value = candidate;
      return delta;
    }
  }
  switch (old_value.type()) {
    case db::ValueType::kInt:
      delta.new_value = db::Value::Int(old_value.as_int() + 1 +
                                       rng.UniformInt(0, 97));
      break;
    case db::ValueType::kDouble:
      delta.new_value = db::Value::Real(old_value.as_double() + 1.5);
      break;
    default:
      delta.new_value = db::Value::Str(old_value.ToString() + "#u");
      break;
  }
  return delta;
}

}  // namespace

SupportSelectionResult AugmentSupportWithUniqueItems(
    const db::Database& db, const std::vector<db::BoundQuery>& queries,
    const SupportSet& base_support, const SupportSelectionOptions& options,
    Rng& rng) {
  SupportSelectionResult out;
  out.support = base_support;

  // Current degree structure: which queries already own a private item?
  BuildResult base = BuildHypergraph(db, queries, base_support);
  std::vector<uint32_t> degree = base.hypergraph.ItemDegrees();
  std::vector<char> has_private(queries.size(), 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    for (uint32_t j : base.hypergraph.edge(static_cast<int>(q))) {
      if (degree[j] == 1) {
        has_private[q] = 1;
        break;
      }
    }
  }

  ConflictSetEngine engine(&db);
  std::set<std::tuple<int, int, int, std::string>> seen;
  for (const CellDelta& d : base_support) {
    seen.insert({d.table, d.row, d.column, d.new_value.ToString()});
  }

  for (size_t q = 0; q < queries.size(); ++q) {
    if (has_private[q]) continue;
    bool fixed = false;
    for (int attempt = 0; attempt < options.candidates_per_query && !fixed;
         ++attempt) {
      CellDelta candidate = RandomSensitiveDelta(db, queries[q], rng);
      if (candidate.new_value.is_null() &&
          queries[q].SensitiveColumns().empty()) {
        break;  // e.g. bare COUNT(*): no delta can ever conflict
      }
      auto key = std::make_tuple(candidate.table, candidate.row,
                                 candidate.column,
                                 candidate.new_value.ToString());
      if (seen.count(key) > 0) continue;
      // Private iff it conflicts with query q and with no other query.
      SupportSet probe{candidate};
      if (engine.ConflictSet(queries[q], probe).empty()) continue;
      bool clashes = false;
      for (size_t other = 0; other < queries.size() && !clashes; ++other) {
        if (other == q) continue;
        clashes = !engine.ConflictSet(queries[other], probe).empty();
      }
      if (clashes) continue;
      seen.insert(key);
      out.support.push_back(candidate);
      ++out.queries_fixed;
      fixed = true;
    }
    if (!fixed) ++out.queries_unfixable;
  }
  return out;
}

}  // namespace qp::market
