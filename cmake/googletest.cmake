# Provides GTest::gtest and GTest::gtest_main.
#
# Resolution order:
#   1. The vendored copy in third_party/googletest (offline-safe default).
#   2. FetchContent download of the same release, for checkouts that strip
#      third_party/.
include(FetchContent)

set(QP_GOOGLETEST_VENDORED "${PROJECT_SOURCE_DIR}/third_party/googletest")

if(EXISTS "${QP_GOOGLETEST_VENDORED}/CMakeLists.txt")
  set(FETCHCONTENT_SOURCE_DIR_GOOGLETEST "${QP_GOOGLETEST_VENDORED}"
      CACHE PATH "Use the vendored googletest" FORCE)
else()
  # Clear a stale cached path (e.g. third_party/ stripped after a first
  # configure) so the download fallback actually engages.
  unset(FETCHCONTENT_SOURCE_DIR_GOOGLETEST CACHE)
endif()

FetchContent_Declare(
  googletest
  URL https://github.com/google/googletest/archive/refs/tags/release-1.12.1.zip
  URL_HASH SHA256=24564e3b712d3eb30ac9a85d92f7d720f60cc0173730ac166f27dda7fed76cb2)

set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)

FetchContent_MakeAvailable(googletest)

# Older googletest releases only define the un-namespaced targets.
if(NOT TARGET GTest::gtest AND TARGET gtest)
  add_library(GTest::gtest ALIAS gtest)
  add_library(GTest::gtest_main ALIAS gtest_main)
endif()
